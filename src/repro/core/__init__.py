"""Janus core: paradigm selection, task queue schedulers, timed engines."""

from .context import IterationContext, JanusFeatures
from .engine import IterationResult, JanusEngine
from .inter_scheduler import InterNodeScheduler
from .intra_scheduler import IntraNodeScheduler
from .memory_model import (
    MemoryEstimate,
    estimate_data_centric,
    estimate_expert_centric,
    estimate_mixed,
    estimate_strategies,
)
from .paradigm import (
    BlockCommProfile,
    Paradigm,
    comm_data_centric,
    comm_expert_centric,
    gain_ratio,
    profile_block,
    profile_model,
    select_paradigm,
)
from .priority import (
    PcieCopyStep,
    internal_pull_order,
    internal_pull_priority,
    pcie_peer_schedule,
    split_external_groups,
)
from .strategies import (
    BlockStrategy,
    DataCentricStrategy,
    ExpertCentricStrategy,
    PipelinedExpertCentricStrategy,
    get_strategy,
    register_strategy,
    resolve_strategy_name,
    strategy_names,
)
from .tensor_parallel import TensorParallelPlan, plan_tensor_parallel
from .unified import (
    data_centric_engine,
    engine_for,
    engine_modes,
    expert_centric_engine,
    paradigm_map,
    pipelined_expert_centric_engine,
    strategy_engine,
    strategy_map,
    unified_engine,
)
from .workload import BlockWorkload, IterationWorkload, build_workload

__all__ = [
    "BlockCommProfile",
    "BlockStrategy",
    "BlockWorkload",
    "DataCentricStrategy",
    "ExpertCentricStrategy",
    "PipelinedExpertCentricStrategy",
    "InterNodeScheduler",
    "IntraNodeScheduler",
    "IterationContext",
    "IterationResult",
    "IterationWorkload",
    "JanusEngine",
    "JanusFeatures",
    "MemoryEstimate",
    "Paradigm",
    "TensorParallelPlan",
    "PcieCopyStep",
    "build_workload",
    "comm_data_centric",
    "comm_expert_centric",
    "data_centric_engine",
    "engine_for",
    "engine_modes",
    "estimate_data_centric",
    "estimate_expert_centric",
    "estimate_mixed",
    "estimate_strategies",
    "expert_centric_engine",
    "gain_ratio",
    "get_strategy",
    "internal_pull_order",
    "internal_pull_priority",
    "paradigm_map",
    "pcie_peer_schedule",
    "pipelined_expert_centric_engine",
    "plan_tensor_parallel",
    "profile_block",
    "profile_model",
    "register_strategy",
    "resolve_strategy_name",
    "select_paradigm",
    "split_external_groups",
    "strategy_engine",
    "strategy_map",
    "strategy_names",
    "unified_engine",
]
