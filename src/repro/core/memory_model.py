"""Per-GPU memory model for the timed engines.

Reproduces the paper's Fig. 16 out-of-memory behaviour: at long sequence
lengths the expert-centric paradigm OOMs because the All-to-All exchange
materializes capacity-padded send/receive buffers proportional to the token
volume (and PyTorch keeps them alive for the backward pass), while the
data-centric paradigm only ever holds a handful of expert weight buffers.

The model is deliberately coarse — constants below are calibrated to an
activation-checkpointed fp32 training setup — but every term is attributable:

* ``weights``: dense replica + local expert shard, times 4 for gradient +
  Adam moments.
* ``activations``: ACT_TENSORS_PER_BLOCK saved tensors of B*S*H per block
  (activation checkpointing keeps this small).
* ``moe stash``: the T routed token activations saved per MoE block for the
  expert backward (both paradigms).
* expert-centric extra: EC_A2A_SLACK capacity-padded copies of the T-token
  payload, twice (dispatch + combine), per MoE block, alive until that
  block's backward completes — the Tutel buffer bloat the paper names as
  the OOM cause.
* data-centric extra: the credit buffer (C experts) plus one expert's
  activations — independent of sequence length.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import ModelConfig
from ..netsim.memory import MemoryTracker

__all__ = [
    "MemoryEstimate",
    "estimate_strategies",
    "estimate_expert_centric",
    "estimate_data_centric",
    "check_fits",
    "ACT_TENSORS_PER_BLOCK",
    "EC_A2A_SLACK",
]

ACT_TENSORS_PER_BLOCK = 2.0
# Tutel-style All-to-All buffering: capacity-factor padded dispatch and
# combine payloads, plus the copies autograd retains for backward, amount
# to roughly six live copies of the routed-token payload per MoE block.
EC_A2A_SLACK = 6.0
WEIGHT_STATE_MULT = 4.0  # weights + grads + Adam m/v


@dataclass(frozen=True)
class MemoryEstimate:
    """Breakdown of one worker's GPU memory demand (bytes)."""

    weights: float
    activations: float
    moe_stash: float
    paradigm_extra: float

    @property
    def total(self) -> float:
        return (
            self.weights + self.activations + self.moe_stash
            + self.paradigm_extra
        )


def _dense_weight_bytes(config: ModelConfig) -> float:
    hidden = config.hidden_dim
    per_block = (
        4 * hidden * hidden              # attention qkv+out
        + 2 * hidden * config.ffn_mult * hidden  # dense FFN
        + 4 * hidden                     # layernorms
    )
    embeddings = (config.vocab_size + config.seq_len) * hidden
    head = config.vocab_size * hidden
    return (
        (per_block * config.num_blocks + embeddings + head)
        * config.dtype_bytes
    )


def _local_expert_bytes(config: ModelConfig, world_size: int) -> float:
    total = 0.0
    for index in config.moe_block_indices:
        total += config.experts_per_worker(index, world_size) * config.expert_bytes
    return total


def _base_terms(config: ModelConfig, world_size: int):
    weights = (
        _dense_weight_bytes(config) + _local_expert_bytes(config, world_size)
    ) * WEIGHT_STATE_MULT
    activation_tokens = config.batch_size * config.seq_len
    activations = (
        activation_tokens
        * config.hidden_dim
        * config.dtype_bytes
        * ACT_TENSORS_PER_BLOCK
        * config.num_blocks
    )
    routed_payload = config.tokens_per_worker * config.token_bytes
    moe_stash = routed_payload * config.num_moe_blocks
    return weights, activations, moe_stash, routed_payload


def estimate_strategies(
    config: ModelConfig,
    world_size: int,
    block_counts,
    credit_size: int = 2,
    pipeline_chunks: int = 4,
) -> MemoryEstimate:
    """Estimate for an arbitrary per-strategy split of the MoE blocks.

    ``block_counts`` maps block-strategy names (see
    :mod:`repro.core.strategies`) to how many MoE blocks run under each;
    the counts must cover every MoE block.  Each strategy contributes its
    own ``paradigm_extra`` terms, summed in strategy-registration order so
    the result is bit-stable.
    """
    from .strategies import get_strategy, strategy_names

    if sum(block_counts.values()) != config.num_moe_blocks:
        raise ValueError("block counts must cover every MoE block")
    unknown = set(block_counts) - set(strategy_names())
    if unknown:
        get_strategy(sorted(unknown)[0])  # raises with the known names
    weights, activations, moe_stash, _ = _base_terms(config, world_size)
    extra = 0.0
    for name in strategy_names():
        if name not in block_counts:
            continue
        terms = get_strategy(name).memory_terms(
            config, block_counts[name], credit_size, pipeline_chunks
        )
        for term in terms:
            extra += term
    return MemoryEstimate(weights, activations, moe_stash, extra)


def estimate_mixed(
    config: ModelConfig,
    world_size: int,
    ec_moe_blocks: int,
    dc_moe_blocks: int,
    credit_size: int = 2,
) -> MemoryEstimate:
    """Estimate when some MoE blocks run expert-centric and some
    data-centric (the unified engine, §7.5)."""
    return estimate_strategies(
        config,
        world_size,
        {"expert-centric": ec_moe_blocks, "data-centric": dc_moe_blocks},
        credit_size=credit_size,
    )


def estimate_expert_centric(
    config: ModelConfig, world_size: int
) -> MemoryEstimate:
    return estimate_mixed(config, world_size, config.num_moe_blocks, 0)


def estimate_data_centric(
    config: ModelConfig,
    world_size: int,
    credit_size: int = 2,
) -> MemoryEstimate:
    return estimate_mixed(
        config, world_size, 0, config.num_moe_blocks, credit_size=credit_size
    )


def check_fits(
    estimate: MemoryEstimate, capacity_bytes: float, label: str = "worker"
) -> MemoryTracker:
    """Validate the estimate against GPU capacity; raises OutOfMemoryError."""
    tracker = MemoryTracker(capacity_bytes)
    tracker.allocate(f"{label}.weights", estimate.weights)
    tracker.allocate(f"{label}.activations", estimate.activations)
    tracker.allocate(f"{label}.moe_stash", estimate.moe_stash)
    tracker.allocate(f"{label}.paradigm_extra", estimate.paradigm_extra)
    return tracker
