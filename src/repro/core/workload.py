"""Iteration workload descriptors for the timed engines.

An :class:`IterationWorkload` distils a :class:`~repro.config.ModelConfig`
running on a cluster into exactly what the timing simulation needs: per-block
compute durations, per-(worker, expert) routed token-slot counts for every
MoE block, and the wire sizes of tokens and experts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..cluster import Cluster
from ..config import ModelConfig
from ..models.flops import (
    BACKWARD_MULTIPLIER,
    attention_flops,
    dense_ffn_flops,
    expert_flops_per_token,
    gate_flops,
)
from ..runtime.layout import ExpertPlacement, RankLayout
from ..workloads import balanced_assignment, zipf_weights

__all__ = ["BlockWorkload", "IterationWorkload", "build_workload"]


@dataclass
class BlockWorkload:
    """What one model block costs on one worker.

    For MoE blocks, ``routing[r, e]`` is the number of token slots worker
    ``r`` routes to global expert ``e`` (row sums equal T = B*S*k).
    """

    index: int
    is_moe: bool
    dense_flops: float                    # attention (+ gate for MoE blocks)
    ffn_flops: float = 0.0                # dense FFN (non-MoE blocks only)
    num_experts: int = 0
    routing: Optional[np.ndarray] = None  # (world, num_experts) int counts

    def tokens_received_by_expert(self) -> np.ndarray:
        if self.routing is None:
            raise ValueError("dense blocks have no routing")
        return self.routing.sum(axis=0)

    def tokens_sent_matrix(
        self, placement: ExpertPlacement, token_bytes: float
    ) -> np.ndarray:
        """(world, world) dispatch byte matrix for All-to-All."""
        world = self.routing.shape[0]
        matrix = np.zeros((world, world))
        for expert in range(self.num_experts):
            owner = placement.owner(expert)
            matrix[:, owner] += self.routing[:, expert] * token_bytes
        np.fill_diagonal(matrix, 0.0)
        return matrix


@dataclass
class IterationWorkload:
    """Everything the timed engines need for one training iteration."""

    config: ModelConfig
    layout: RankLayout
    blocks: List[BlockWorkload]
    token_bytes: float
    expert_bytes: float
    expert_flops: float                   # per token through one expert

    @property
    def world_size(self) -> int:
        return self.layout.world_size

    def placement(self, block_index: int) -> ExpertPlacement:
        block = self.blocks[block_index]
        if not block.is_moe:
            raise ValueError(f"block {block_index} is not an MoE block")
        return ExpertPlacement(block.num_experts, self.world_size)

    def moe_blocks(self) -> List[BlockWorkload]:
        return [block for block in self.blocks if block.is_moe]

    def expert_compute_seconds(
        self, tokens: float, gpu_flops: float, backward: bool = False
    ) -> float:
        seconds = tokens * self.expert_flops / gpu_flops
        return seconds * (BACKWARD_MULTIPLIER if backward else 1.0)


def build_workload(
    config: ModelConfig,
    cluster: Cluster,
    imbalance: float = 0.0,
    rng: Optional[np.random.Generator] = None,
) -> IterationWorkload:
    """Build the per-iteration workload for ``config`` on ``cluster``.

    ``imbalance`` is a Zipf skew for the expert routing distribution:
    0 means perfectly balanced (the paper's analytic lower bound for
    expert-centric), larger values concentrate tokens on hot experts
    (the §3.1 imbalance observation).
    """
    rng = rng if rng is not None else np.random.default_rng(0)
    layout = RankLayout(cluster.num_machines, cluster.gpus_per_machine)
    world = layout.world_size
    tokens_per_worker = config.tokens_per_worker

    blocks: List[BlockWorkload] = []
    for index in range(config.num_blocks):
        attn = attention_flops(
            config.batch_size, config.seq_len, config.hidden_dim
        )
        if config.is_moe_block(index):
            num_experts = config.num_experts(index)
            gate = gate_flops(
                config.batch_size,
                config.seq_len,
                config.hidden_dim,
                num_experts,
            )
            routing = np.zeros((world, num_experts), dtype=np.int64)
            if imbalance > 0:
                # One popularity vector per block: every worker overloads
                # the same hot experts (the cluster-wide imbalance of §3.1).
                weights = zipf_weights(num_experts, imbalance, rng=rng)
            for rank in range(world):
                if imbalance <= 0:
                    routing[rank] = balanced_assignment(
                        tokens_per_worker, num_experts
                    )
                else:
                    routing[rank] = rng.multinomial(tokens_per_worker, weights)
            blocks.append(
                BlockWorkload(
                    index=index,
                    is_moe=True,
                    dense_flops=attn + gate,
                    num_experts=num_experts,
                    routing=routing,
                )
            )
        else:
            blocks.append(
                BlockWorkload(
                    index=index,
                    is_moe=False,
                    dense_flops=attn,
                    ffn_flops=dense_ffn_flops(
                        config.batch_size,
                        config.seq_len,
                        config.hidden_dim,
                        config.ffn_mult,
                    ),
                )
            )

    return IterationWorkload(
        config=config,
        layout=layout,
        blocks=blocks,
        token_bytes=config.token_bytes,
        expert_bytes=config.expert_bytes,
        expert_flops=expert_flops_per_token(config.hidden_dim, config.ffn_mult),
    )
