"""The timed MoE training engine.

Simulates one training iteration of an MoE model on the cluster.  Dense
compute runs in the engine's worker processes; every MoE block is delegated
to the pluggable :class:`~repro.core.strategies.BlockStrategy` named by the
per-block strategy map.  The built-in strategies are:

* **expert-centric** blocks are bulk-synchronous: all workers rendezvous,
  run the dispatch All-to-All, compute their resident experts on the
  received tokens, and run the combine All-to-All (this is the
  Tutel-equivalent baseline, and the expert-centric mode of unified Janus);
* **data-centric** blocks run through the Janus Task Queue: per-worker
  Intra-Node Schedulers pull experts (credit-gated, optionally staggered and
  peer-scheduled) while the per-machine Inter-Node Schedulers fetch external
  experts into the cache, and workers compute each expert as it arrives;
* **pipelined-ec** blocks split the All-to-Alls into token chunks so expert
  compute overlaps communication (Parm/FlowMoE-style pipeline scheduling).

The engine raises :class:`~repro.netsim.memory.OutOfMemoryError` when the
strategy mix's memory footprint exceeds GPU capacity (Fig. 16).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..cluster import Cluster, Device
from ..faults import FaultInjector, FaultStats, ResilienceConfig
from ..metrics import MetricsRegistry, collect_iteration_metrics
from ..netsim import Fabric
from ..simkit import AllOf, Environment
from ..trace import TraceRecorder
from .context import IterationContext, JanusFeatures
from .memory_model import check_fits, estimate_strategies
from .paradigm import Paradigm
from .strategies import get_strategy, resolve_strategy_name, strategy_names
from .taskgraph import TaskKind, build_iteration_plan, run_lane
from .workload import IterationWorkload

__all__ = ["IterationResult", "JanusEngine"]

_BACKWARD = 2.0


@dataclass
class IterationResult:
    """Timing and traffic outcome of one simulated iteration."""

    seconds: float
    trace: TraceRecorder
    nic_egress_bytes: np.ndarray       # per machine
    strategies: Dict[int, str] = field(default_factory=dict)
    features: JanusFeatures = field(default_factory=JanusFeatures)
    fault_stats: Optional[FaultStats] = None
    # Credit-buffer accounting (§5.1.1): final and minimum level per rank.
    credit_levels: Dict[int, float] = field(default_factory=dict)
    credit_min_levels: Dict[int, float] = field(default_factory=dict)
    # Scope of this iteration's spans inside ``trace`` (0 for a fresh
    # per-iteration recorder; the new_iteration() counter when the engine
    # shares one recorder across iterations).
    iteration: int = 0
    # Kernel events processed while simulating this iteration (wall-clock
    # benchmarking divides these by seconds-of-host-time for events/sec).
    sim_events: int = 0

    @property
    def paradigms(self) -> Dict[int, Paradigm]:
        """Per-block strategy as :class:`Paradigm` members (legacy view;
        only works while every block ran a strategy the enum names)."""
        return {
            block: Paradigm(name) for block, name in self.strategies.items()
        }

    @property
    def all_to_all_seconds(self) -> float:
        """Union time spent inside All-to-All collectives."""
        return self.trace.busy_time("comm.a2a", iteration=self.iteration)

    @property
    def cross_node_gb_per_machine(self) -> float:
        return float(self.nic_egress_bytes.mean()) / 1e9

    @property
    def all_to_all_share(self) -> float:
        if self.seconds <= 0:
            return 0.0
        return self.all_to_all_seconds / self.seconds


class JanusEngine:
    """Run simulated training iterations under a per-block strategy map."""

    def __init__(
        self,
        cluster: Cluster,
        workload: IterationWorkload,
        block_strategies,
        features: Optional[JanusFeatures] = None,
        check_memory: bool = True,
        trace_worker: int = 0,
        machine_speed: Optional[Dict[int, float]] = None,
        compute_jitter: float = 0.0,
        jitter_seed: int = 0,
        fault_plan=None,
        resilience=None,
        degradation=None,
        controller=None,
        metrics: Optional[MetricsRegistry] = None,
        trace: Optional[TraceRecorder] = None,
        scheduler: str = "taskgraph",
    ):
        """``block_strategies`` maps every MoE block index to the strategy
        that executes it: a registered strategy name, a
        :class:`~repro.core.paradigm.Paradigm` member, or a
        :class:`~repro.core.strategies.BlockStrategy` class.

        ``machine_speed`` maps machine index -> relative compute speed
        (1.0 = nominal; 0.5 = a straggler at half speed).  Models the
        heterogeneous/straggling machines of §3.2: synchronous All-to-All
        is paced by the slowest participant, while data-centric pulls let
        fast machines proceed.

        ``compute_jitter`` adds multiplicative lognormal noise (sigma in
        log space) to every compute task.  Synchronous execution pays the
        *maximum* jitter at every barrier (sum of maxima over the
        iteration); asynchronous pipelines average it out and only the
        final weight-update barrier takes a maximum — the §3.2 "less
        synchronization" effect, measurable with this knob.

        ``fault_plan`` (:class:`~repro.faults.FaultPlan`) injects seeded,
        time-windowed faults into every iteration; it implies a default
        :class:`~repro.faults.ResilienceConfig` unless ``resilience`` is
        given explicitly (``resilience`` alone arms timeouts/retries with
        no injected faults).  ``degradation``
        (:class:`~repro.faults.DegradationPolicy`) switches blocks that
        keep blowing their pull deadlines to the fallback strategy between
        iterations of :meth:`run`; setting its ``recover_after_clean`` knob
        auto-wraps it in a fault-arm-only adaptive controller so degraded
        blocks return to their preferred paradigm after a clean streak.

        ``controller`` (:class:`~repro.control.Controller`) attaches the
        full adaptive control plane: before each iteration it advances the
        workload's drift process, after each iteration it harvests the
        result's signals and may re-pick per-block strategies and the
        expert replica map.  With drift and faults off the controller is
        structurally inert and runs stay bit-identical.

        ``scheduler`` picks how the iteration's processes are organised:
        ``"taskgraph"`` (the default) builds an explicit task DAG via
        :mod:`repro.core.taskgraph` and runs one simkit process per lane —
        bit-identical to the legacy path for the built-in paradigms, and
        the only path that supports micro-batching and gradient all-reduce
        schedules; ``"legacy"`` keeps the original hand-rolled process
        spawning (retained for the equivalence test battery).

        ``metrics`` (:class:`~repro.metrics.MetricsRegistry`) enables
        quantitative observability: live counters in the schedulers plus
        a post-run harvest per iteration.  Attaching a registry never
        changes simulated times.  ``trace`` shares one
        :class:`~repro.trace.TraceRecorder` across every iteration this
        engine runs (each iteration gets its own scope via
        ``new_iteration()``); by default each iteration records into a
        fresh recorder."""
        self.cluster = cluster
        self.workload = workload
        self.features = features if features is not None else JanusFeatures()
        self.check_memory = check_memory
        self.trace_worker = trace_worker
        self.machine_speed = dict(machine_speed or {})
        for machine, speed in self.machine_speed.items():
            if not 0 <= machine < cluster.num_machines:
                raise ValueError(f"machine {machine} out of range")
            if speed <= 0:
                raise ValueError("machine speeds must be positive")
        if compute_jitter < 0:
            raise ValueError("compute_jitter must be non-negative")
        self.compute_jitter = compute_jitter
        self.jitter_seed = jitter_seed
        self._jitter_rng = None
        self.fault_plan = fault_plan
        self.resilience = resilience
        if self.resilience is None and fault_plan is not None and fault_plan:
            self.resilience = ResilienceConfig()
        self.degradation = degradation
        self.controller = controller
        # Control-plane replica map (block -> expert -> machines); empty
        # unless a controller placed replicas.
        self.replicas: Dict[int, Dict[int, tuple]] = {}
        # Last chunk-tuning pass: block -> predicted per-chunk All-to-All
        # seconds (empty until ``chunk_autotune`` runs a retune).
        self.chunk_predictions: Dict[int, float] = {}
        if (
            self.controller is None
            and degradation is not None
            and getattr(degradation, "recover_after_clean", None) is not None
        ):
            # recover_after_clean needs cross-iteration state the frozen
            # policy cannot hold: wrap it in a fault-arm-only controller.
            from ..control import ControlConfig, Controller, ControlPolicy

            self.controller = Controller(
                policy=ControlPolicy(
                    config=ControlConfig(
                        adapt_load=False, adapt_replicas=False
                    ),
                    degradation=degradation,
                )
            )
        elif (
            self.controller is not None
            and self.controller.policy is not None
            and self.controller.policy.degradation is None
            and degradation is not None
        ):
            self.controller.policy.degradation = degradation
        self.metrics = metrics
        self.trace_recorder = trace
        if scheduler not in ("taskgraph", "legacy"):
            raise ValueError(
                f"scheduler must be 'taskgraph' or 'legacy', got {scheduler!r}"
            )
        self.scheduler = scheduler
        self.iterations_run = 0
        moe_indices = {b.index for b in workload.moe_blocks()}
        if set(block_strategies) != moe_indices:
            raise ValueError(
                "block_strategies must cover exactly the MoE blocks "
                f"{sorted(moe_indices)}, got {sorted(block_strategies)}"
            )
        self.block_strategies: Dict[int, str] = {
            index: resolve_strategy_name(spec)
            for index, spec in block_strategies.items()
        }

    @property
    def block_paradigms(self) -> Dict[int, Paradigm]:
        """Legacy view of the strategy map as :class:`Paradigm` members."""
        return {
            index: Paradigm(name)
            for index, name in self.block_strategies.items()
        }

    def _rank_flops(self, rank: int) -> float:
        """Effective FLOPs of the GPU hosting ``rank``, incl. stragglers."""
        base = self.cluster.spec.gpu.effective_flops(
            self.workload.config.hidden_dim
        )
        machine = self.workload.layout.machine_of(rank)
        return base * self.machine_speed.get(machine, 1.0)

    def _jittered(self, seconds: float) -> float:
        """Apply multiplicative compute jitter to a task duration."""
        if self.compute_jitter <= 0 or seconds <= 0:
            return seconds
        return float(
            seconds * self._jitter_rng.lognormal(0.0, self.compute_jitter)
        )

    # -- public API ----------------------------------------------------------------

    def _prepare(self, forward_only: bool, trace=None):
        """Build the per-iteration world: environment, fabric, fault
        machinery, strategies and context.  Shared verbatim by both
        schedulers and by :meth:`build_graph` (exact code move from the
        legacy ``run_iteration`` — bit-identity depends on it)."""
        env = Environment()
        fabric = Fabric(env, self.cluster)
        if trace is None:
            if self.trace_recorder is not None:
                trace = self.trace_recorder
                if self.iterations_run:
                    trace.new_iteration()
            else:
                trace = TraceRecorder()
        fault_stats = None
        if self.fault_plan is not None or self.resilience is not None:
            fault_stats = FaultStats()
        if self.fault_plan is not None and self.fault_plan:
            FaultInjector(
                self.fault_plan, fabric, trace=trace, stats=fault_stats
            ).install()
        strategy_blocks: Dict[str, List[int]] = {}
        for index in sorted(self.block_strategies):
            name = self.block_strategies[index]
            strategy_blocks.setdefault(name, []).append(index)
        # Instantiate in registration order: it fixes the relative spawn
        # order of coordinator/scheduler processes (determinism).
        strategies = {
            name: get_strategy(name)(self, tuple(strategy_blocks[name]))
            for name in strategy_names()
            if name in strategy_blocks
        }
        dc_blocks = sorted(
            index
            for name, strategy in strategies.items()
            if strategy.uses_task_queue
            for index in strategy.blocks
        )
        ctx = IterationContext(
            env, fabric, self.workload, self.features, trace,
            dc_blocks=dc_blocks,
            strategy_blocks={
                name: strategy.blocks for name, strategy in strategies.items()
            },
            resilience=self.resilience,
            fault_stats=fault_stats,
            metrics=self.metrics,
            trace_worker=self.trace_worker,
            replicas=self.replicas,
        )
        for strategy in strategies.values():
            strategy.setup(ctx, forward_only)
        self._spawn_replica_syncs(ctx, dc_blocks)
        runner = {
            index: strategies[name]
            for index, name in self.block_strategies.items()
        }
        return ctx, strategies, runner, fabric, fault_stats, trace

    def _spawn_replica_syncs(self, ctx, dc_blocks) -> None:
        """Spawn one background sync per (block, expert, replica machine).

        The replica serves the machine's cache at iteration start (the
        bounded-staleness copy the fetch chains rely on); the sync transfer
        refreshes it, paying real NIC bytes that contend with the
        iteration's other traffic.  No replicas -> no processes -> the
        driver is byte-for-byte the pre-control one.
        """
        if not self.replicas:
            return
        task_queue_blocks = set(dc_blocks)
        num_nics = self.cluster.spec.num_nics
        position = 0
        for block in sorted(self.replicas):
            if block not in task_queue_blocks:
                continue
            placement = ctx.placements[block]
            by_expert = self.replicas[block]
            for expert in sorted(by_expert):
                home = self.workload.layout.machine_of(placement.owner(expert))
                for machine in by_expert[expert]:
                    if machine == home:
                        continue
                    ctx.background_procs.append(
                        ctx.env.process(
                            self._replica_sync(
                                ctx, block, expert, home, machine,
                                position % num_nics,
                            ),
                            name=f"replica-sync[{block}:{expert}->{machine}]",
                        )
                    )
                    position += 1

    def _replica_sync(self, ctx, block, expert, home, machine, nic):
        yield ctx.iteration_start
        cached = ctx.cached_event(block, machine, expert)
        if not cached.triggered:
            cached.succeed()
        started = ctx.env.now
        flow = ctx.fabric.transfer(
            Device.host(home),
            Device.host(machine),
            self.workload.expert_bytes,
            nic_index=nic,
            tag=("replica-sync", block, machine, expert),
        )
        yield flow.done
        ctx.replica_syncs[machine] += 1
        ctx.trace.record(
            "comm.replica", started, ctx.env.now, block=block,
            detail=f"machine={machine} nic={nic} expert={expert}",
        )

    def run_iteration(self, forward_only: bool = False) -> IterationResult:
        """Simulate one iteration from a cold start; returns its result.

        ``forward_only=True`` simulates an inference pass (§9: the same
        communication design applies to serving): no backward sweep, no
        gradient return traffic.
        """
        if self.controller is not None:
            self.controller.prepare(self)
        if self.features.chunk_autotune:
            # Routing is fixed per iteration and produced before any MoE
            # communication, so the tuner sees this iteration's (already
            # drifted) load — the controller re-tunes between iterations
            # simply by this running again at the next iteration start.
            self._retune_chunks()
        if self.check_memory:
            self._check_memory()
        self._jitter_rng = np.random.default_rng(self.jitter_seed)
        ctx, strategies, runner, fabric, fault_stats, trace = self._prepare(
            forward_only
        )
        env = ctx.env

        if self.scheduler == "taskgraph":
            worker_procs, collector_procs = self._spawn_graph(
                ctx, strategies, runner, forward_only
            )
        else:
            if self.features.grad_allreduce != "none":
                raise ValueError(
                    "grad_allreduce schedules require scheduler='taskgraph'"
                )
            if self.features.micro_batches > 1 and any(
                s.micro_capable for s in strategies.values()
            ):
                raise ValueError(
                    "micro-batched strategies require scheduler='taskgraph'"
                )
            worker_procs = [
                env.process(self._worker(ctx, rank, runner, forward_only))
                for rank in range(self.workload.world_size)
            ]
            for strategy in strategies.values():
                strategy.spawn_processes(ctx, forward_only)
            collector_procs = [] if forward_only else [
                proc
                for strategy in strategies.values()
                for proc in strategy.spawn_grad_collectors(ctx)
            ]

        def driver():
            ctx.iteration_start.succeed()
            yield AllOf(env, worker_procs)
            pending = (
                list(ctx.grad_delivered) + collector_procs
                + list(ctx.background_procs)
            )
            if pending:
                yield AllOf(env, pending)

        env.run(until=env.process(driver()))
        egress = np.array(
            [
                fabric.nic_bytes(machine, "out")
                for machine in range(self.cluster.num_machines)
            ]
        )
        result = IterationResult(
            seconds=env.now,
            trace=trace,
            nic_egress_bytes=egress,
            strategies=dict(self.block_strategies),
            features=self.features,
            fault_stats=fault_stats,
            credit_levels={
                rank: container.level
                for rank, container in ctx.credits.items()
            },
            credit_min_levels={
                rank: container.min_level
                for rank, container in ctx.credits.items()
            },
            iteration=trace.iteration,
            sim_events=env.events_processed,
        )
        if self.metrics is not None:
            collect_iteration_metrics(
                self.metrics, result, fabric, ctx,
                iteration=self.iterations_run,
            )
        self.iterations_run += 1
        return result

    def run(self, iterations: int = 1) -> List[IterationResult]:
        results = []
        for _ in range(iterations):
            result = self.run_iteration()
            results.append(result)
            self._apply_control(result)
        return results

    def set_block_chunks(self, overrides, micro_batches=None) -> None:
        """Re-point the chunked-EC chunk counts: per-block overrides (a
        mapping or pair tuple) plus an optional new global micro-batch M.
        The chunk tuner's actuation entry point; emits the
        ``control.chunk_tuning.*`` switch metrics."""
        previous = self.features
        updates = {"block_chunks": overrides}
        if micro_batches is not None:
            updates["micro_batches"] = micro_batches
        self.features = dataclasses.replace(previous, **updates)
        if self.metrics is None:
            return
        for block, chunks in self.features.block_chunks:
            self.metrics.set(
                "control.chunk_tuning.chunks", chunks, block=block
            )
            if previous.chunks_for(block) != chunks:
                self.metrics.inc("control.chunk_tuning.switches", block=block)
        if micro_batches is not None:
            self.metrics.set(
                "control.chunk_tuning.micro_batches", micro_batches
            )
            if previous.micro_batches != micro_batches:
                self.metrics.inc(
                    "control.chunk_tuning.switches", block="micro"
                )

    def _retune_chunks(self) -> None:
        """Re-pick per-block chunk counts (and the shared micro-batch M)
        for the upcoming iteration from its routing, via the control
        plane's measured-load cost model."""
        from ..control import tune_engine_chunks

        plan = tune_engine_chunks(self)
        self.chunk_predictions = dict(plan.predicted_chunk_s)
        self.set_block_chunks(plan.block_chunks, plan.micro_batches)
        if self.metrics is not None:
            self.metrics.inc("control.chunk_tuning.retunes")
            for block, seconds in plan.predicted_chunk_s:
                self.metrics.set(
                    "control.chunk_tuning.predicted_chunk_s", seconds,
                    block=block,
                )

    def set_block_strategy(self, block: int, spec) -> str:
        """Re-point one MoE block at a (resolved) strategy; returns the
        canonical name.  The control plane's actuation entry point."""
        if block not in self.block_strategies:
            raise ValueError(f"block {block} has no strategy to replace")
        resolved = resolve_strategy_name(spec)
        self.block_strategies[block] = resolved
        return resolved

    def _apply_control(self, result: IterationResult) -> None:
        """Between iterations: let the control plane adapt the engine.

        With a controller attached this is the full adaptive loop (fault +
        load arms, replication).  Otherwise the legacy degradation-only
        path runs: flip blocks that kept missing their pull deadlines to
        the policy's fallback strategy (graceful degradation through the
        unified per-block selector), one-way.
        """
        if self.controller is not None:
            self.controller.observe(self, result)
            return
        if self.degradation is None or result.fault_stats is None:
            return
        for block, name in self.degradation.decide(result.fault_stats).items():
            resolved = resolve_strategy_name(name)
            if self.block_strategies.get(block) == resolved:
                continue
            self.block_strategies[block] = resolved
            result.fault_stats.degraded_blocks[block] = resolved
            result.trace.mark(
                "fault.degrade", result.seconds, block=block, strategy=resolved
            )

    def run_inference(self) -> IterationResult:
        """Simulate one forward-only (serving) pass."""
        return self.run_iteration(forward_only=True)

    # -- task-graph scheduler ----------------------------------------------------------

    def _spawn_graph(self, ctx, strategies, runner, forward_only: bool):
        """Spawn one simkit process per graph lane, in plan order (which
        replicates the legacy spawn order)."""
        plan = build_iteration_plan(self, ctx, strategies, runner,
                                    forward_only)
        observer = self._task_observer(ctx)
        env = ctx.env
        arbiters = None
        if self.features.a2a_stagger != "off":
            # Intra-A2A chunk scheduling: one slot models the striped NIC
            # fabric (a hierarchical All-to-All already uses every NIC of
            # a machine), so concurrent chunks serialize at line rate in
            # claim-priority order instead of superposing.
            from ..simkit import PriorityResource
            from .taskgraph import NIC_FABRIC_RESOURCE

            arbiters = {NIC_FABRIC_RESOURCE: PriorityResource(env)}
        worker_procs, collector_procs = [], []
        for kind, payload in plan.entries:
            if kind == "lane":
                proc = env.process(
                    run_lane(plan.graph, payload, observer, arbiters),
                    name=payload.name, priority=payload.priority,
                )
                if payload.role == "worker":
                    worker_procs.append(proc)
                elif payload.role == "collector":
                    collector_procs.append(proc)
            elif kind == "legacy-services":
                payload.spawn_processes(ctx, forward_only)
            else:  # legacy-collectors
                collector_procs.extend(payload.spawn_grad_collectors(ctx))
        return worker_procs, collector_procs

    def _task_observer(self, ctx):
        """Per-task completion hook: ``task.*`` trace lane (for the trace
        worker's tasks and the global service/collector tasks) plus
        per-kind count/seconds counters.  Pure Python bookkeeping — never
        changes simulated time."""
        metrics = self.metrics
        trace = ctx.trace
        trace_worker = self.trace_worker
        # Per-block per-chunk A2A timing feeds the tuner's predicted-vs-
        # measured report; only booked under tuning so default-features
        # runs keep their exact golden metric key sets.
        chunk_metrics = metrics is not None and self.features.chunk_autotune

        def observe(task, started: float, ended: float) -> None:
            kind = task.kind.value
            if metrics is not None:
                metrics.inc("task.count", kind=kind)
                metrics.inc("task.seconds", ended - started, kind=kind)
                if (
                    chunk_metrics
                    and task.kind is TaskKind.A2A_CHUNK
                    and task.block is not None
                ):
                    metrics.inc(
                        "control.chunk_tuning.measured_chunks",
                        block=task.block,
                    )
                    metrics.inc(
                        "control.chunk_tuning.measured_chunk_s",
                        ended - started, block=task.block,
                    )
            if task.worker is None or task.worker == trace_worker:
                trace.record(
                    f"task.{kind}", started, ended,
                    worker=task.worker, block=task.block, detail=task.detail,
                )

        return observe

    def build_graph(self, forward_only: bool = False):
        """Build (without running) the iteration's task graph — the object
        behind ``repro graph`` exports.  Uses a throwaway trace recorder so
        the engine's shared recorder is not advanced."""
        self._jitter_rng = np.random.default_rng(self.jitter_seed)
        ctx, strategies, runner, _, _, _ = self._prepare(
            forward_only, trace=TraceRecorder()
        )
        plan = build_iteration_plan(self, ctx, strategies, runner,
                                    forward_only)
        return plan.graph

    # -- setup helpers ----------------------------------------------------------------

    def _check_memory(self) -> None:
        counts: Dict[str, int] = {}
        for name in self.block_strategies.values():
            counts[name] = counts.get(name, 0) + 1
        estimate = estimate_strategies(
            self.workload.config,
            self.workload.world_size,
            counts,
            credit_size=self.features.credit_size,
            # Conservative: the block running the fewest chunks holds the
            # largest transient dispatch/combine buffers.
            pipeline_chunks=self.features.min_pipeline_chunks,
        )
        check_fits(estimate, self.cluster.spec.gpu.memory_bytes)

    # -- worker process ------------------------------------------------------------------

    def _worker(
        self, ctx: IterationContext, rank: int, runner,
        forward_only: bool = False,
    ):
        yield ctx.iteration_start
        gpu = ctx.gpu_of[rank]
        gpu_flops = self._rank_flops(rank)
        workload = self.workload
        record = rank == self.trace_worker

        # Forward sweep.
        for block in workload.blocks:
            index = block.index
            if block.is_moe:
                ctx.block_entry[("fwd", index, rank)].succeed()
            dense_seconds = self._jittered(
                (block.dense_flops + block.ffn_flops) / gpu_flops
            )
            start = ctx.env.now
            yield ctx.env.process(ctx.fabric.compute(gpu, dense_seconds))
            if record:
                ctx.trace.record(
                    "compute.dense", start, ctx.env.now,
                    worker=rank, block=index, detail="fwd",
                )
            if block.is_moe:
                yield from runner[index].run_block(ctx, rank, index, "fwd")
            if record:
                ctx.trace.mark(
                    "block_complete", ctx.env.now, worker=rank, block=index
                )

        if forward_only:
            return

        # Backward sweep (reverse block order; compute costs doubled).
        for block in reversed(workload.blocks):
            index = block.index
            if block.is_moe:
                ctx.block_entry[("bwd", index, rank)].succeed()
                yield from runner[index].run_block(ctx, rank, index, "bwd")
            dense_seconds = self._jittered(
                _BACKWARD * (block.dense_flops + block.ffn_flops) / gpu_flops
            )
            yield ctx.env.process(ctx.fabric.compute(gpu, dense_seconds))
