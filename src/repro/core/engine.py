"""The timed MoE training engine.

Simulates one training iteration of an MoE model on the cluster, executing
each MoE block under either paradigm:

* **expert-centric** blocks are bulk-synchronous: all workers rendezvous,
  run the dispatch All-to-All, compute their resident experts on the
  received tokens, and run the combine All-to-All (this is the
  Tutel-equivalent baseline, and the expert-centric mode of unified Janus);
* **data-centric** blocks run through the Janus Task Queue: per-worker
  Intra-Node Schedulers pull experts (credit-gated, optionally staggered and
  peer-scheduled) while the per-machine Inter-Node Schedulers fetch external
  experts into the cache, and workers compute each expert as it arrives.

The engine raises :class:`~repro.netsim.memory.OutOfMemoryError` when the
paradigm's memory footprint exceeds GPU capacity (Fig. 16).
"""

from __future__ import annotations

from dataclasses import dataclass
from types import SimpleNamespace
from typing import Dict, List, Optional

import numpy as np

from ..cluster import Cluster, Device
from ..netsim import Fabric, all_to_all
from ..simkit import AllOf, Environment
from ..trace import TraceRecorder
from .context import IterationContext, JanusFeatures
from .inter_scheduler import InterNodeScheduler
from .intra_scheduler import IntraNodeScheduler
from .memory_model import check_fits, estimate_mixed
from .paradigm import Paradigm
from .workload import IterationWorkload

__all__ = ["IterationResult", "JanusEngine"]

_BACKWARD = 2.0


@dataclass
class IterationResult:
    """Timing and traffic outcome of one simulated iteration."""

    seconds: float
    trace: TraceRecorder
    nic_egress_bytes: np.ndarray       # per machine
    paradigms: Dict[int, Paradigm]
    features: JanusFeatures

    @property
    def all_to_all_seconds(self) -> float:
        """Union time spent inside All-to-All collectives."""
        return self.trace.busy_time("comm.a2a")

    @property
    def cross_node_gb_per_machine(self) -> float:
        return float(self.nic_egress_bytes.mean()) / 1e9

    @property
    def all_to_all_share(self) -> float:
        if self.seconds <= 0:
            return 0.0
        return self.all_to_all_seconds / self.seconds


class JanusEngine:
    """Run simulated training iterations under a per-block paradigm map."""

    def __init__(
        self,
        cluster: Cluster,
        workload: IterationWorkload,
        block_paradigms: Dict[int, Paradigm],
        features: JanusFeatures = None,
        check_memory: bool = True,
        trace_worker: int = 0,
        machine_speed: Optional[Dict[int, float]] = None,
        compute_jitter: float = 0.0,
        jitter_seed: int = 0,
    ):
        """``machine_speed`` maps machine index -> relative compute speed
        (1.0 = nominal; 0.5 = a straggler at half speed).  Models the
        heterogeneous/straggling machines of §3.2: synchronous All-to-All
        is paced by the slowest participant, while data-centric pulls let
        fast machines proceed.

        ``compute_jitter`` adds multiplicative lognormal noise (sigma in
        log space) to every compute task.  Synchronous execution pays the
        *maximum* jitter at every barrier (sum of maxima over the
        iteration); asynchronous pipelines average it out and only the
        final weight-update barrier takes a maximum — the §3.2 "less
        synchronization" effect, measurable with this knob."""
        self.cluster = cluster
        self.workload = workload
        self.features = features if features is not None else JanusFeatures()
        self.check_memory = check_memory
        self.trace_worker = trace_worker
        self.machine_speed = dict(machine_speed or {})
        for machine, speed in self.machine_speed.items():
            if not 0 <= machine < cluster.num_machines:
                raise ValueError(f"machine {machine} out of range")
            if speed <= 0:
                raise ValueError("machine speeds must be positive")
        if compute_jitter < 0:
            raise ValueError("compute_jitter must be non-negative")
        self.compute_jitter = compute_jitter
        self.jitter_seed = jitter_seed
        self._jitter_rng = None
        moe_indices = {b.index for b in workload.moe_blocks()}
        if set(block_paradigms) != moe_indices:
            raise ValueError(
                "block_paradigms must cover exactly the MoE blocks "
                f"{sorted(moe_indices)}, got {sorted(block_paradigms)}"
            )
        self.block_paradigms = dict(block_paradigms)

    def _rank_flops(self, rank: int) -> float:
        """Effective FLOPs of the GPU hosting ``rank``, incl. stragglers."""
        base = self.cluster.spec.gpu.effective_flops(
            self.workload.config.hidden_dim
        )
        machine = self.workload.layout.machine_of(rank)
        return base * self.machine_speed.get(machine, 1.0)

    def _jittered(self, seconds: float) -> float:
        """Apply multiplicative compute jitter to a task duration."""
        if self.compute_jitter <= 0 or seconds <= 0:
            return seconds
        return float(
            seconds * self._jitter_rng.lognormal(0.0, self.compute_jitter)
        )

    # -- public API ----------------------------------------------------------------

    def run_iteration(self, forward_only: bool = False) -> IterationResult:
        """Simulate one iteration from a cold start; returns its result.

        ``forward_only=True`` simulates an inference pass (§9: the same
        communication design applies to serving): no backward sweep, no
        gradient return traffic.
        """
        if self.check_memory:
            self._check_memory()
        import numpy as _np

        self._jitter_rng = _np.random.default_rng(self.jitter_seed)
        env = Environment()
        fabric = Fabric(env, self.cluster)
        trace = TraceRecorder()
        dc_blocks = {
            b for b, p in self.block_paradigms.items()
            if p is Paradigm.DATA_CENTRIC
        }
        ctx = IterationContext(
            env, fabric, self.workload, self.features, trace,
            dc_blocks=dc_blocks,
        )
        ec_sync = self._build_ec_sync(ctx, forward_only)

        worker_procs = [
            env.process(self._worker(ctx, rank, ec_sync, forward_only))
            for rank in range(self.workload.world_size)
        ]
        self._spawn_coordinators(ctx, ec_sync)
        self._spawn_schedulers(ctx, forward_only)
        collector_procs = (
            [] if forward_only else self._spawn_grad_collectors(ctx)
        )

        def driver():
            ctx.iteration_start.succeed()
            yield AllOf(env, worker_procs)
            pending = list(ctx.grad_delivered) + collector_procs
            if pending:
                yield AllOf(env, pending)

        env.run(until=env.process(driver()))
        egress = np.array(
            [
                fabric.nic_bytes(machine, "out")
                for machine in range(self.cluster.num_machines)
            ]
        )
        return IterationResult(
            seconds=env.now,
            trace=trace,
            nic_egress_bytes=egress,
            paradigms=dict(self.block_paradigms),
            features=self.features,
        )

    def run(self, iterations: int = 1) -> List[IterationResult]:
        return [self.run_iteration() for _ in range(iterations)]

    def run_inference(self) -> IterationResult:
        """Simulate one forward-only (serving) pass."""
        return self.run_iteration(forward_only=True)

    # -- setup helpers ----------------------------------------------------------------

    def _check_memory(self) -> None:
        ec = sum(
            1 for p in self.block_paradigms.values()
            if p is Paradigm.EXPERT_CENTRIC
        )
        dc = len(self.block_paradigms) - ec
        estimate = estimate_mixed(
            self.workload.config,
            self.workload.world_size,
            ec_moe_blocks=ec,
            dc_moe_blocks=dc,
            credit_size=self.features.credit_size,
        )
        check_fits(estimate, self.cluster.spec.gpu.memory_bytes)

    def _build_ec_sync(self, ctx: IterationContext, forward_only: bool = False):
        sync = {}
        world = self.workload.world_size
        phases = ("fwd",) if forward_only else ("fwd", "bwd")
        for block_index, paradigm in self.block_paradigms.items():
            if paradigm is not Paradigm.EXPERT_CENTRIC:
                continue
            for phase in phases:
                sync[(phase, block_index)] = SimpleNamespace(
                    arrive=[ctx.env.event() for _ in range(world)],
                    computed=[ctx.env.event() for _ in range(world)],
                    dispatch_done=ctx.env.event(),
                    combine_done=ctx.env.event(),
                )
        return sync

    def _spawn_coordinators(self, ctx: IterationContext, ec_sync) -> None:
        for (phase, block_index) in ec_sync:
            ctx.env.process(
                self._ec_coordinator(ctx, ec_sync, block_index, phase)
            )

    def _spawn_schedulers(
        self, ctx: IterationContext, forward_only: bool = False
    ) -> None:
        if not ctx.dc_block_indices:
            return
        phases = ("fwd",) if forward_only else ("fwd", "bwd")
        for rank in range(self.workload.world_size):
            scheduler = IntraNodeScheduler(ctx, rank)
            for phase in phases:
                ctx.env.process(scheduler.pull_pipeline(phase))
        if ctx.features.hierarchical:
            for machine in range(ctx.layout.num_machines):
                inter = InterNodeScheduler(ctx, machine)
                for chain in inter.fetch_pipelines():
                    ctx.env.process(chain)

    def _spawn_grad_collectors(self, ctx: IterationContext) -> List:
        if not ctx.features.hierarchical or not ctx.dc_block_indices:
            return []
        processes = []
        for machine in range(ctx.layout.num_machines):
            inter = InterNodeScheduler(ctx, machine)
            for collector in inter.grad_collectors():
                processes.append(ctx.env.process(collector))
        return processes

    # -- worker process ------------------------------------------------------------------

    def _worker(
        self, ctx: IterationContext, rank: int, ec_sync,
        forward_only: bool = False,
    ):
        yield ctx.iteration_start
        gpu = ctx.gpu_of[rank]
        gpu_flops = self._rank_flops(rank)
        workload = self.workload
        record = rank == self.trace_worker

        # Forward sweep.
        for block in workload.blocks:
            index = block.index
            if block.is_moe:
                ctx.block_entry[("fwd", index, rank)].succeed()
            dense_seconds = self._jittered(
                (block.dense_flops + block.ffn_flops) / gpu_flops
            )
            start = ctx.env.now
            yield ctx.env.process(ctx.fabric.compute(gpu, dense_seconds))
            if record:
                ctx.trace.record(
                    "compute.dense", start, ctx.env.now,
                    worker=rank, block=index, detail="fwd",
                )
            if block.is_moe:
                if self.block_paradigms[index] is Paradigm.EXPERT_CENTRIC:
                    yield from self._ec_block(ctx, ec_sync, rank, index, "fwd")
                else:
                    yield from self._dc_block(ctx, rank, index, "fwd")
            if record:
                ctx.trace.mark(
                    "block_complete", ctx.env.now, worker=rank, block=index
                )

        if forward_only:
            return

        # Backward sweep (reverse block order; compute costs doubled).
        for block in reversed(workload.blocks):
            index = block.index
            if block.is_moe:
                ctx.block_entry[("bwd", index, rank)].succeed()
                if self.block_paradigms[index] is Paradigm.EXPERT_CENTRIC:
                    yield from self._ec_block(ctx, ec_sync, rank, index, "bwd")
                else:
                    yield from self._dc_block(ctx, rank, index, "bwd")
            dense_seconds = self._jittered(
                _BACKWARD * (block.dense_flops + block.ffn_flops) / gpu_flops
            )
            yield ctx.env.process(ctx.fabric.compute(gpu, dense_seconds))

    # -- data-centric block ----------------------------------------------------------------

    def _dc_block(self, ctx: IterationContext, rank: int, index: int, phase: str):
        workload = self.workload
        block = workload.blocks[index]
        gpu = ctx.gpu_of[rank]
        gpu_flops = self._rank_flops(rank)
        backward = phase == "bwd"
        mult = _BACKWARD if backward else 1.0
        record = rank == self.trace_worker
        routing = block.routing[rank]

        overhead = self.cluster.spec.gpu.kernel_overhead

        def expert_seconds(expert: int) -> float:
            return self._jittered(
                (routing[expert] * workload.expert_flops / gpu_flops + overhead)
                * mult
            )

        # Resident experts first — they need no communication at all.
        for expert in ctx.own_experts_with_tokens(index, rank):
            start = ctx.env.now
            yield ctx.env.process(ctx.fabric.compute(gpu, expert_seconds(expert)))
            if record:
                ctx.trace.record(
                    "compute.expert", start, ctx.env.now,
                    worker=rank, block=index, detail=f"{phase}:own:{expert}",
                )

        needed = ctx.needed_experts(index, rank)
        store = ctx.ready_store(phase, index, rank)
        for _ in range(len(needed)):
            expert = yield store.get()
            start = ctx.env.now
            yield ctx.env.process(ctx.fabric.compute(gpu, expert_seconds(expert)))
            if record:
                ctx.trace.record(
                    "compute.expert", start, ctx.env.now,
                    worker=rank, block=index, detail=f"{phase}:{expert}",
                )
            ctx.credits[rank].put(1)
            if not backward:
                # Offload the used expert to host memory for backward reuse
                # (asynchronous; does not block the pipeline).
                ctx.fabric.transfer(
                    gpu,
                    Device.host(ctx.layout.machine_of(rank)),
                    workload.expert_bytes,
                    tag=("offload", index, rank, expert),
                )
            else:
                self._push_gradient(ctx, rank, index, expert)

    def _push_gradient(self, ctx: IterationContext, rank: int, index: int, expert: int):
        workload = self.workload
        placement = ctx.placements[index]
        owner = placement.owner(expert)
        machine = ctx.layout.machine_of(rank)
        owner_machine = ctx.layout.machine_of(owner)
        gpu = ctx.gpu_of[rank]
        if owner_machine == machine:
            flow = ctx.fabric.transfer(
                gpu, ctx.gpu_of[owner], workload.expert_bytes,
                tag=("grad-internal", index, rank, expert),
            )
            ctx.grad_delivered.append(flow.done)
        elif ctx.features.hierarchical:
            flow = ctx.fabric.transfer(
                gpu, Device.host(machine), workload.expert_bytes,
                tag=("grad-stage", index, rank, expert),
            )
            ctx.env.process(
                _stage_grad(ctx, flow, index, machine, expert)
            )
        else:
            flow = ctx.fabric.transfer(
                gpu, ctx.gpu_of[owner], workload.expert_bytes,
                tag=("grad-direct", index, rank, expert),
            )
            ctx.grad_delivered.append(flow.done)

    # -- expert-centric block -----------------------------------------------------------------

    def _ec_block(self, ctx, ec_sync, rank: int, index: int, phase: str):
        sync = ec_sync[(phase, index)]
        workload = self.workload
        block = workload.blocks[index]
        placement = ctx.placements[index]
        gpu_flops = self._rank_flops(rank)
        mult = _BACKWARD if phase == "bwd" else 1.0

        sync.arrive[rank].succeed()
        yield sync.dispatch_done
        received = sum(
            int(block.routing[:, expert].sum())
            for expert in placement.experts_of(rank)
        )
        # One batched GEMM group per resident expert: the expert-centric
        # paradigm pays far fewer kernel launches than fine-grained pulls.
        overhead = (
            self.cluster.spec.gpu.kernel_overhead
            * placement.experts_per_worker
        )
        seconds = self._jittered(
            (received * workload.expert_flops / gpu_flops + overhead) * mult
        )
        start = ctx.env.now
        yield ctx.env.process(ctx.fabric.compute(ctx.gpu_of[rank], seconds))
        if rank == self.trace_worker:
            ctx.trace.record(
                "compute.expert", start, ctx.env.now,
                worker=rank, block=index, detail=f"{phase}:ec",
            )
        sync.computed[rank].succeed()
        yield sync.combine_done

    def _ec_coordinator(self, ctx, ec_sync, index: int, phase: str):
        sync = ec_sync[(phase, index)]
        workload = self.workload
        block = workload.blocks[index]
        placement = ctx.placements[index]
        dispatch = block.tokens_sent_matrix(placement, workload.token_bytes)
        combine = dispatch.T

        yield AllOf(ctx.env, sync.arrive)
        start = ctx.env.now
        yield all_to_all(
            ctx.fabric, dispatch,
            hierarchical=self.features.hierarchical_a2a,
        )
        ctx.trace.record(
            "comm.a2a", start, ctx.env.now,
            block=index, detail=f"{phase}-dispatch",
        )
        sync.dispatch_done.succeed()
        yield AllOf(ctx.env, sync.computed)
        start = ctx.env.now
        yield all_to_all(
            ctx.fabric, combine,
            hierarchical=self.features.hierarchical_a2a,
        )
        ctx.trace.record(
            "comm.a2a", start, ctx.env.now,
            block=index, detail=f"{phase}-combine",
        )
        sync.combine_done.succeed()


def _stage_grad(ctx, flow, index: int, machine: int, expert: int):
    yield flow.done
    yield ctx.grad_contrib_store(index, machine, expert).put(1)
