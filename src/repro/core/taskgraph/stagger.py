"""Intra-A2A chunk scheduling: arbitrate chunk sends sharing the NIC fabric.

Every All-to-All chunk of an iteration rides the same NIC set — the
hierarchical All-to-All stripes each machine pair's aggregated traffic
over *all* of a machine's NICs (which GPU pairs share to begin with), so
concurrent chunks from different blocks, phases and micro-batches collide
on the same links.  The default fluid model ignores that collision (each
chunk transfers at full fabric bandwidth regardless of concurrency),
which flatters schedules that blast many chunks at once.

With ``JanusFeatures.a2a_stagger`` enabled the fabric is modelled as a
single arbitrated resource: each ``A2A_CHUNK`` task holds the NIC-fabric
slot for the duration of its transfer, so overlapping chunks serialize at
line rate instead of magically superposing.  Two arbitration policies:

* ``"wave"`` — the unscheduled baseline: every chunk requests the fabric
  at the same priority, so grants follow raw arrival order.  When a burst
  of chunks from different micro-batches lands together, the grant order
  is whatever the lane interleaving happened to produce.
* ``"chain"`` — the scheduled variant (the ScheMoE-style intra-A2A
  scheduling win): :func:`apply_a2a_stagger` staggers the rounds, giving
  chunks of *earlier micro-batches* strictly higher fabric priority.  A
  congested fabric then always finishes the send whose downstream compute
  is next on the critical path, instead of letting a prefetch for a later
  micro-batch delay it.  Same bytes, same bandwidth — earlier completions
  where they matter.

:func:`apply_a2a_stagger` is a post-pass over an assembled iteration
graph.  It only annotates ``A2A_CHUNK`` tasks with a prioritized
``ResourceClaim`` on the fabric; the claim is enforced by the executor
when the engine hands it a :class:`~repro.simkit.PriorityResource`
arbiter for :data:`NIC_FABRIC_RESOURCE` (see ``run_lane``).  The claims
appear in the DOT/JSON exports like any other, with their priority.
"""

from __future__ import annotations

import re

from .graph import TaskGraph
from .task import ResourceClaim, Task, TaskKind

__all__ = ["NIC_FABRIC_RESOURCE", "apply_a2a_stagger", "chunk_round"]

#: The shared resource every All-to-All chunk occupies: the hierarchical
#: All-to-All stripes over all NICs, so one cluster-wide group suffices.
NIC_FABRIC_RESOURCE = "nic.fabric"

_MICRO_DETAIL = re.compile(r":mb(\d+)$")


def chunk_round(task: Task) -> int:
    """The stagger round of one A2A chunk task: its micro-batch index.

    Chunks outside a micro-batched schedule (no ``:mbK`` detail suffix)
    all land in round 0 — with a single round the chain policy degrades
    to wave, which is exactly right: there is no later round whose sends
    could steal the fabric from an earlier one.
    """
    match = _MICRO_DETAIL.search(task.detail or "")
    return int(match.group(1)) if match else 0


def apply_a2a_stagger(
    graph: TaskGraph,
    policy: str = "chain",
    resource: str = NIC_FABRIC_RESOURCE,
) -> int:
    """Annotate the graph's A2A chunk tasks with fabric-arbitration claims.

    ``policy`` is ``"wave"`` (all chunks at equal priority — FIFO grants
    in arrival order) or ``"chain"`` (priority = stagger round, so the
    earliest in-flight micro-batch wins the fabric).  Returns the number
    of chunk tasks annotated.
    """
    if policy not in ("wave", "chain"):
        raise ValueError(f"unknown stagger policy {policy!r}")
    count = 0
    for task in graph.tasks():
        if task.kind is not TaskKind.A2A_CHUNK:
            continue
        priority = float(chunk_round(task)) if policy == "chain" else 0.0
        task.claims = task.claims + (
            ResourceClaim(resource, priority=priority),
        )
        count += 1
    return count
