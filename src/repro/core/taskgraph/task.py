"""Task nodes of the iteration task graph.

A :class:`Task` is one schedulable unit of an iteration: a gate
synchronization point, a dense or expert compute kernel, one All-to-All
chunk, a Task-Queue pull pipeline, or a gradient all-reduce.  Tasks carry

* **dependencies** — ``waits`` (event labels the task blocks on before its
  body runs) and ``signals`` (event labels it triggers after the body),
* **resource claims** — which simulated resources (GPU compute streams,
  NIC links) the body occupies, used by the structural validator and the
  DAG export (the actual arbitration happens in the fabric's resources),
* **priority** — the simkit dispatch priority of the owning lane
  (background lanes such as the overlapped gradient all-reduce run at
  priority > 1 so they start after same-instant foreground work).

Tasks never touch the simulation kernel themselves: the executor resolves
labels to events and drives bodies (see :mod:`.executor`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Optional, Tuple

__all__ = ["TaskKind", "ResourceClaim", "Task"]


class TaskKind(str, Enum):
    """What one task node does (the Fig. 5 activity classes)."""

    GATE = "gate"                      # pure synchronization, no duration
    DENSE_COMPUTE = "dense-compute"    # attention (+ gate) kernels
    EXPERT_COMPUTE = "expert-compute"  # expert FFN kernels
    A2A_CHUNK = "a2a-chunk"            # one (chunk of an) All-to-All
    PULL = "pull"                      # Task-Queue pull machinery
    GRAD_ALLREDUCE = "grad-allreduce"  # dense-gradient all-reduce


@dataclass(frozen=True, slots=True)
class ResourceClaim:
    """One simulated resource a task occupies while its body runs.

    ``mode`` is ``"scoped"`` when the claim is acquired and released inside
    the task body (the common case: ``fabric.compute`` / flow transfers are
    context-managed).  A claim split across tasks uses an ``"acquire"`` on
    one task and a matching ``"release"`` on a later task of the same lane;
    the validator checks every acquire is released.

    Most claims are descriptive (the fabric arbitrates its own resources);
    a claim with a non-``None`` ``priority`` is *enforced* when the
    executor is handed an arbiter for its resource — the task then holds a
    slot of that resource for the duration of its body, granted in
    priority order (smaller first, FIFO within a priority).  The intra-A2A
    chunk scheduler uses this to stagger chunk sends over a shared NIC
    fabric.
    """

    resource: str
    mode: str = "scoped"
    priority: Optional[float] = None

    def __post_init__(self):
        if self.mode not in ("scoped", "acquire", "release"):
            raise ValueError(f"unknown claim mode {self.mode!r}")


@dataclass(slots=True)
class Task:
    """One node of the task graph.

    ``waits``/``signals`` are event *labels* (strings); the owning
    :class:`~repro.core.taskgraph.graph.TaskGraph` maps labels to simkit
    events, which keeps graphs buildable (and validatable / exportable)
    without an environment.  ``body`` is either ``None`` (pure
    synchronization), a plain callable (instant bookkeeping), or a
    generator function yielding simkit events (timed work).
    """

    name: str
    kind: TaskKind
    waits: Tuple[str, ...] = ()
    signals: Tuple[str, ...] = ()
    body: Optional[Callable] = None
    claims: Tuple[ResourceClaim, ...] = field(default_factory=tuple)
    priority: int = 1
    worker: Optional[int] = None
    block: Optional[int] = None
    phase: Optional[str] = None
    detail: Optional[str] = None
    #: Whether the executor's observer books this task (``task.*`` span and
    #: per-kind counters).  Builders turn it off for bookkeeping gates.
    traced: bool = True

    def __post_init__(self):
        if type(self.kind) is not TaskKind:
            self.kind = TaskKind(self.kind)
        if self.priority < 1:
            raise ValueError("task priority must be >= 1")

    def describe(self) -> dict:
        """JSON-ready structural view of this task (no body)."""
        return {
            "name": self.name,
            "kind": self.kind.value,
            "waits": list(self.waits),
            "signals": list(self.signals),
            "claims": [
                {"resource": claim.resource, "mode": claim.mode}
                if claim.priority is None
                else {
                    "resource": claim.resource,
                    "mode": claim.mode,
                    "priority": claim.priority,
                }
                for claim in self.claims
            ],
            "priority": self.priority,
            "worker": self.worker,
            "block": self.block,
            "phase": self.phase,
            "detail": self.detail,
        }
