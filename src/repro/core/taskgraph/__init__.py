"""Explicit task-graph scheduling for the Janus engine.

The iteration is expressed as a DAG of typed tasks (gate, dense/expert
compute, All-to-All chunks, Task-Queue pulls, gradient all-reduce) grouped
into lanes, each lane executed by one simkit process.  The four legacy
paradigms are rebuilt as graph builders — bit-identical on simulated times
and traffic — and the graph unlocks schedules the strategy layer could not
express: pipeline-parallel micro-batching and backward all-reduce overlap.
"""

from .builders import SpawnPlan, build_iteration_plan, entry_label, gpu_claim
from .executor import run_lane
from .graph import GraphValidationError, Lane, TaskGraph
from .stagger import NIC_FABRIC_RESOURCE, apply_a2a_stagger, chunk_round
from .task import ResourceClaim, Task, TaskKind

__all__ = [
    "Task",
    "TaskKind",
    "ResourceClaim",
    "Lane",
    "TaskGraph",
    "GraphValidationError",
    "SpawnPlan",
    "build_iteration_plan",
    "entry_label",
    "gpu_claim",
    "run_lane",
    "NIC_FABRIC_RESOURCE",
    "apply_a2a_stagger",
    "chunk_round",
]
