"""The iteration task graph: lanes of tasks plus a label→event registry.

A :class:`TaskGraph` holds an ordered list of :class:`Lane`\\ s.  Each lane
is executed by exactly one simkit process (see :mod:`.executor`): its tasks
run in sequence, and cross-lane dependencies are expressed through event
labels (a task ``signals`` a label, tasks elsewhere ``wait`` on it).  The
1:1 lane↔process mapping is what keeps the rebuilt paradigms bit-identical
to the legacy strategy processes — the graph adds structure, not events.

Labels are plain strings so a graph is a self-contained structural object:
:meth:`validate`, :meth:`to_dot` and :meth:`to_json` need no simulation
environment.  At execution time :meth:`event` resolves labels to simkit
events, lazily creating them; events owned elsewhere (``iteration_start``,
the ``block_entry`` gates) are attached with :meth:`bind`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

from .task import Task

__all__ = ["Lane", "TaskGraph", "GraphValidationError"]

_ROLES = ("worker", "service", "collector")


class GraphValidationError(ValueError):
    """The task graph is structurally unsound (cycle, orphan, leaked claim)."""


@dataclass
class Lane:
    """One sequential run of tasks, executed by one simkit process."""

    name: str
    role: str = "service"
    tasks: List[Task] = field(default_factory=list)
    priority: int = 1
    worker: Optional[int] = None

    def __post_init__(self):
        if self.role not in _ROLES:
            raise ValueError(f"unknown lane role {self.role!r}")

    def add(self, *tasks: Task) -> "Lane":
        self.tasks.extend(tasks)
        return self


class TaskGraph:
    """Ordered lanes + label registry; validator and DOT/JSON export."""

    def __init__(self, env=None):
        self.env = env
        self.lanes: List[Lane] = []
        self._events: Dict[str, object] = {}
        # Labels triggered from outside the graph (the engine driver) and
        # labels consumed outside it (composite task bodies wait on bound
        # events internally, invisibly to the structural view).
        self.inputs: Set[str] = set()
        self.outputs: Set[str] = set()

    # -- construction ------------------------------------------------------

    def lane(
        self,
        name: str,
        role: str = "service",
        priority: int = 1,
        worker: Optional[int] = None,
    ) -> Lane:
        lane = Lane(name, role=role, priority=priority, worker=worker)
        self.lanes.append(lane)
        return lane

    def bind(self, label: str, event) -> None:
        """Attach an externally owned simkit event to ``label``."""
        self._events[label] = event

    def event(self, label: str):
        """Resolve ``label`` to its simkit event, creating it on first use."""
        event = self._events.get(label)
        if event is None:
            if self.env is None:
                raise GraphValidationError(
                    f"label {label!r} is unbound and the graph has no "
                    "environment to create events in"
                )
            event = self.env.event()
            self._events[label] = event
        return event

    def declare_inputs(self, *labels: str) -> None:
        self.inputs.update(labels)

    def declare_outputs(self, *labels: str) -> None:
        self.outputs.update(labels)

    def tasks(self) -> Iterator[Task]:
        for lane in self.lanes:
            yield from lane.tasks

    # -- structural analysis -----------------------------------------------

    def _edges(self) -> List[Tuple[str, str]]:
        """Dependency edges by task name: lane order + signal→wait."""
        edges: List[Tuple[str, str]] = []
        signaler: Dict[str, str] = {}
        for task in self.tasks():
            for label in task.signals:
                signaler[label] = task.name
        for lane in self.lanes:
            for prev, nxt in zip(lane.tasks, lane.tasks[1:]):
                edges.append((prev.name, nxt.name))
        for task in self.tasks():
            for label in task.waits:
                source = signaler.get(label)
                if source is not None:
                    edges.append((source, task.name))
        return edges

    def validate(self) -> List[str]:
        """Check the graph is executable; return a topological task order.

        Raises :class:`GraphValidationError` on:

        * duplicate task names or multiply-signaled labels (an event can
          only succeed once),
        * waited labels nobody signals (unless declared inputs) and
          signaled labels nobody waits on (unless declared outputs),
        * dependency cycles (lane order + signal→wait edges),
        * unbalanced acquire/release resource claims within a lane.
        """
        tasks = list(self.tasks())
        names = [task.name for task in tasks]
        if len(set(names)) != len(names):
            seen: Set[str] = set()
            dup = next(n for n in names if n in seen or seen.add(n))
            raise GraphValidationError(f"duplicate task name {dup!r}")

        signaler: Dict[str, str] = {}
        for task in tasks:
            for label in task.signals:
                if label in signaler:
                    raise GraphValidationError(
                        f"label {label!r} signaled by both "
                        f"{signaler[label]!r} and {task.name!r}"
                    )
                signaler[label] = task.name
        waited = {label for task in tasks for label in task.waits}
        for label in waited:
            if label not in signaler and label not in self.inputs:
                raise GraphValidationError(
                    f"label {label!r} is waited on but never signaled "
                    "(and not a declared input)"
                )
        for label, name in signaler.items():
            if label not in waited and label not in self.outputs:
                raise GraphValidationError(
                    f"label {label!r} signaled by {name!r} is never waited "
                    "on (and not a declared output)"
                )

        order = self._topo_order(names)
        self._check_claims()
        return order

    def _topo_order(self, names: List[str]) -> List[str]:
        indegree = {name: 0 for name in names}
        children: Dict[str, List[str]] = {name: [] for name in names}
        for src, dst in self._edges():
            indegree[dst] += 1
            children[src].append(dst)
        ready = deque(name for name in names if indegree[name] == 0)
        order: List[str] = []
        while ready:
            name = ready.popleft()
            order.append(name)
            for child in children[name]:
                indegree[child] -= 1
                if indegree[child] == 0:
                    ready.append(child)
        if len(order) != len(names):
            stuck = sorted(set(names) - set(order))
            raise GraphValidationError(
                f"dependency cycle through {len(stuck)} task(s): "
                f"{', '.join(stuck[:6])}"
            )
        return order

    def _check_claims(self) -> None:
        for lane in self.lanes:
            held: Dict[str, int] = {}
            for task in lane.tasks:
                for claim in task.claims:
                    if claim.mode == "acquire":
                        held[claim.resource] = held.get(claim.resource, 0) + 1
                    elif claim.mode == "release":
                        if not held.get(claim.resource):
                            raise GraphValidationError(
                                f"task {task.name!r} releases "
                                f"{claim.resource!r} without a prior acquire "
                                f"in lane {lane.name!r}"
                            )
                        held[claim.resource] -= 1
            leaked = sorted(r for r, n in held.items() if n)
            if leaked:
                raise GraphValidationError(
                    f"lane {lane.name!r} never releases acquired "
                    f"resource(s): {', '.join(leaked)}"
                )

    # -- export ------------------------------------------------------------

    def to_json(self) -> dict:
        return {
            "schema": "janus-repro/taskgraph/v1",
            "inputs": sorted(self.inputs),
            "outputs": sorted(self.outputs),
            "num_tasks": sum(len(lane.tasks) for lane in self.lanes),
            "lanes": [
                {
                    "name": lane.name,
                    "role": lane.role,
                    "priority": lane.priority,
                    "worker": lane.worker,
                    "tasks": [task.describe() for task in lane.tasks],
                }
                for lane in self.lanes
            ],
            "edges": [list(edge) for edge in self._edges()],
        }

    def to_dot(self) -> str:
        """Graphviz digraph: one cluster per lane, dependency edges."""
        ids = {task.name: f"t{i}" for i, task in enumerate(self.tasks())}
        lines = [
            "digraph taskgraph {",
            "  rankdir=LR;",
            '  node [shape=box, fontsize=9];',
        ]
        for i, lane in enumerate(self.lanes):
            lines.append(f"  subgraph cluster_{i} {{")
            lines.append(f'    label="{_quote(lane.name)} [{lane.role}]";')
            for task in lane.tasks:
                label = _quote(task.name) + "\\n" + task.kind.value
                lines.append(f'    {ids[task.name]} [label="{label}"];')
            lines.append("  }")
        for src, dst in self._edges():
            lines.append(f"  {ids[src]} -> {ids[dst]};")
        lines.append("}")
        return "\n".join(lines)


def _quote(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')
