"""Run task-graph lanes on the simkit kernel.

One lane = one simkit process.  The runner is written for *bit-exact*
equivalence with the hand-rolled strategy processes it replaces, so it must
never create events or processes the legacy code would not have created:

* a task with a single wait yields that event **directly** (no wrapper),
* a task with several waits builds the :class:`AllOf` lazily, at the moment
  the lane reaches the task — exactly where the legacy coordinators built
  theirs,
* generator bodies are ``yield from``-ed inline (no sub-process),
* signal events succeed after the body, in declaration order.

The optional ``observer`` is called after each traced body with the task
and its start/end sim-times; it is pure bookkeeping (spans, counters) and
must never touch the simulation clock.

``arbiters`` (optional) maps resource names to simkit
:class:`~repro.simkit.PriorityResource` instances.  A task carrying a
*prioritized* scoped :class:`ResourceClaim` on an arbitrated resource
holds one slot of it for the duration of its body — the intra-A2A chunk
scheduler's NIC-fabric serialization.  Without arbiters (every default
run) the execution path is exactly the legacy one.
"""

from __future__ import annotations

from types import GeneratorType

from ...simkit import AllOf
from .graph import Lane, TaskGraph

__all__ = ["run_lane"]


def run_lane(graph: TaskGraph, lane: Lane, observer=None, arbiters=None):
    """Generator executing ``lane``'s tasks in order (one simkit process)."""
    env = graph.env
    event_of = graph.event
    for task in lane.tasks:
        waits = task.waits
        if waits:
            if len(waits) == 1:
                yield event_of(waits[0])
            else:
                yield AllOf(env, [event_of(label) for label in waits])
        grants = []
        if arbiters is not None:
            for claim in task.claims:
                if claim.priority is None or claim.mode != "scoped":
                    continue
                arbiter = arbiters.get(claim.resource)
                if arbiter is None:
                    continue
                request = arbiter.request(priority=claim.priority)
                yield request
                grants.append((arbiter, request))
        if task.body is not None:
            started = env.now
            outcome = task.body()
            if isinstance(outcome, GeneratorType):
                yield from outcome
            if observer is not None and task.traced:
                observer(task, started, env.now)
        for arbiter, request in grants:
            arbiter.release(request)
        for label in task.signals:
            event_of(label).succeed()
