"""Build the per-iteration task graph and its process spawn plan.

:func:`build_iteration_plan` turns one engine iteration into a
:class:`~repro.core.taskgraph.graph.TaskGraph` plus an ordered spawn plan.
The plan replicates the legacy engine's process creation order exactly —
worker processes for ranks 0..W-1, then each strategy's service processes
in strategy registration order, then gradient collectors — because that
order fixes event ids and therefore the golden-pinned kernel counters.

Strategies contribute through three hooks (see
:class:`~repro.core.strategies.base.BlockStrategy`):

* ``worker_tasks``    — the tasks a worker lane runs for one block,
* ``service_lanes``   — coordinator/scheduler lanes (``None`` = fall back
  to the legacy ``spawn_processes``),
* ``collector_lanes`` — gradient-collector lanes (``None`` = legacy
  ``spawn_grad_collectors``).

On top of the rebuilt paradigms, this module owns the two schedules only
the task graph can express: **micro-batched worker lanes** (``M`` lanes
per rank whose block DAGs interleave, so one micro-batch's expert compute
overlaps another's All-to-All across block boundaries) and the
**backward-pass gradient all-reduce** (per-block dense-gradient all-reduce
lanes scheduled into idle link time of the remaining backward sweep, at
background dispatch priority).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from ...netsim import all_reduce
from .graph import Lane, TaskGraph
from .stagger import apply_a2a_stagger
from .task import ResourceClaim, Task, TaskKind

__all__ = ["SpawnPlan", "build_iteration_plan"]

_BACKWARD = 2.0


@dataclass
class SpawnPlan:
    """The graph plus the ordered process-spawn entries.

    Entries are ``("lane", Lane)`` for graph lanes and
    ``("legacy-services" | "legacy-collectors", strategy)`` for strategies
    that keep their hand-rolled processes.
    """

    graph: TaskGraph
    entries: List[Tuple[str, object]] = field(default_factory=list)

    def lanes(self, role=None) -> List[Lane]:
        return [
            payload
            for kind, payload in self.entries
            if kind == "lane" and (role is None or payload.role == role)
        ]


# -- labels ----------------------------------------------------------------


def entry_label(phase: str, index: int, rank: int) -> str:
    return f"entry.{phase}.b{index}.w{rank}"


def _bdense_label(index: int, rank: int, micro=None) -> str:
    label = f"grad-ready.b{index}.w{rank}"
    return label if micro is None else f"{label}.mb{micro}"


def _done_label(rank: int, micro=None) -> str:
    label = f"worker-done.w{rank}"
    return label if micro is None else f"{label}.mb{micro}"


def gpu_claim(rank: int) -> Tuple[ResourceClaim, ...]:
    """The per-GPU compute stream the fabric arbitrates (capacity 1)."""
    return (ResourceClaim(f"gpu.{rank}.stream"),)


# -- plan assembly ---------------------------------------------------------


def build_iteration_plan(
    engine, ctx, strategies, runner, forward_only: bool
) -> SpawnPlan:
    """Assemble the full iteration graph in legacy spawn order."""
    graph = TaskGraph(ctx.env)
    graph.bind("iteration_start", ctx.iteration_start)
    graph.declare_inputs("iteration_start")
    for (phase, index, rank), event in ctx.block_entry.items():
        label = entry_label(phase, index, rank)
        graph.bind(label, event)
        # Block-entry gates are consumed inside composite pull pipelines
        # (invisible to the structural view) or by nothing at all on
        # All-to-All blocks; either way they leave the graph.
        graph.declare_outputs(label)

    features = engine.features
    micro = (
        features.micro_batches
        if any(s.micro_capable for s in strategies.values())
        else 1
    )
    allreduce = "none" if forward_only else features.grad_allreduce

    plan = SpawnPlan(graph)
    world = engine.workload.world_size
    for rank in range(world):
        if micro > 1:
            for m in range(micro):
                lane = graph.lane(
                    f"worker.{rank}.mb{m}", role="worker", worker=rank
                )
                _build_micro_worker_lane(
                    engine, ctx, lane, rank, m, micro, runner,
                    forward_only, allreduce,
                )
                plan.entries.append(("lane", lane))
        else:
            lane = graph.lane(f"worker.{rank}", role="worker", worker=rank)
            _build_worker_lane(
                engine, ctx, lane, rank, runner, forward_only, allreduce
            )
            plan.entries.append(("lane", lane))

    for strategy in strategies.values():
        if micro > 1 and strategy.micro_capable:
            lanes = strategy.micro_service_lanes(
                ctx, graph, forward_only, micro
            )
        else:
            lanes = strategy.service_lanes(ctx, graph, forward_only)
        if lanes is None:
            plan.entries.append(("legacy-services", strategy))
        else:
            plan.entries.extend(("lane", lane) for lane in lanes)

    if not forward_only:
        for strategy in strategies.values():
            lanes = strategy.collector_lanes(ctx, graph)
            if lanes is None:
                plan.entries.append(("legacy-collectors", strategy))
            else:
                plan.entries.extend(("lane", lane) for lane in lanes)
        if allreduce != "none":
            plan.entries.extend(
                ("lane", lane)
                for lane in _build_allreduce_lanes(engine, ctx, graph, micro)
            )
    if features.a2a_stagger != "off":
        # Intra-A2A chunk scheduling (post-pass): model the shared NIC
        # fabric as an arbitrated resource so concurrent chunk sends
        # serialize at line rate — "wave" grants in raw arrival order,
        # "chain" staggers grants by schedule position.  Off by default —
        # the pass adds claims, so skipping it keeps graphs (and their
        # exports) byte-identical.
        apply_a2a_stagger(graph, features.a2a_stagger)
    return plan


# -- worker lanes ----------------------------------------------------------


def _dense_body(engine, ctx, rank, gpu, block, mult, scale, record, detail,
                rank_flops):
    """Dense (attention + non-expert FFN) compute for one block.

    ``mult`` is the backward factor, ``scale`` the 1/M micro-batch split;
    both are powers of two in practice so the duration math stays
    bit-identical to the legacy inline expression.  ``rank_flops`` is
    hoisted to one :meth:`JanusEngine._rank_flops` call per lane — the
    lookup chain dominates graph-build time when resolved per block.
    """
    index = block.index
    base = (block.dense_flops + block.ffn_flops) / rank_flops

    def body():
        seconds = engine._jittered(mult * scale * base)
        start = ctx.env.now
        yield ctx.env.process(ctx.fabric.compute(gpu, seconds))
        if record:
            ctx.trace.record(
                "compute.dense", start, ctx.env.now,
                worker=rank, block=index, detail=detail,
            )

    return body


def _mark_body(ctx, rank, index):
    def body():
        ctx.trace.mark(
            "block_complete", ctx.env.now, worker=rank, block=index
        )

    return body


def _build_worker_lane(
    engine, ctx, lane, rank, runner, forward_only, allreduce
):
    """The straight (non-micro-batched) worker lane: mirrors the legacy
    ``JanusEngine._worker`` generator task for task."""
    workload = engine.workload
    gpu = ctx.gpu_of[rank]
    record = rank == engine.trace_worker
    claims = gpu_claim(rank)
    rank_flops = engine._rank_flops(rank)

    lane.add(Task(
        f"w{rank}.start", TaskKind.GATE, waits=("iteration_start",),
        worker=rank, traced=False,
    ))
    for block in workload.blocks:
        index = block.index
        if block.is_moe:
            lane.add(Task(
                f"w{rank}.fwd.b{index}.entry", TaskKind.GATE,
                signals=(entry_label("fwd", index, rank),),
                worker=rank, block=index, phase="fwd", traced=False,
            ))
        lane.add(Task(
            f"w{rank}.fwd.b{index}.dense", TaskKind.DENSE_COMPUTE,
            body=_dense_body(
                engine, ctx, rank, gpu, block, 1.0, 1.0, record, "fwd",
                rank_flops,
            ),
            claims=claims, worker=rank, block=index, phase="fwd",
            detail="fwd",
        ))
        if block.is_moe:
            lane.add(*runner[index].worker_tasks(ctx, rank, index, "fwd"))
        if record:
            lane.add(Task(
                f"w{rank}.fwd.b{index}.mark", TaskKind.GATE,
                body=_mark_body(ctx, rank, index),
                worker=rank, block=index, traced=False,
            ))

    if forward_only:
        return

    for block in reversed(workload.blocks):
        index = block.index
        if block.is_moe:
            lane.add(Task(
                f"w{rank}.bwd.b{index}.entry", TaskKind.GATE,
                signals=(entry_label("bwd", index, rank),),
                worker=rank, block=index, phase="bwd", traced=False,
            ))
            lane.add(*runner[index].worker_tasks(ctx, rank, index, "bwd"))
        lane.add(Task(
            f"w{rank}.bwd.b{index}.dense", TaskKind.DENSE_COMPUTE,
            body=_dense_body(
                engine, ctx, rank, gpu, block, _BACKWARD, 1.0, False, "bwd",
                rank_flops,
            ),
            claims=claims, worker=rank, block=index, phase="bwd",
            detail="bwd",
        ))
        if allreduce == "overlap":
            lane.add(Task(
                f"w{rank}.bwd.b{index}.grad-ready", TaskKind.GATE,
                signals=(_bdense_label(index, rank),),
                worker=rank, block=index, phase="bwd", traced=False,
            ))
    if allreduce == "serial":
        lane.add(Task(
            f"w{rank}.done", TaskKind.GATE, signals=(_done_label(rank),),
            worker=rank, traced=False,
        ))


def _build_micro_worker_lane(
    engine, ctx, lane, rank, m, micro, runner, forward_only, allreduce
):
    """One of the M micro-batch lanes of a rank.

    Every lane carries 1/M of the dense flops and of each micro-capable
    block's tokens; the shared per-GPU compute stream serializes the
    compute while the per-micro-batch All-to-Alls overlap it.  Blocks
    whose strategy is not micro-capable run at full batch on lane 0 with a
    rendezvous/release barrier across the rank's lanes.
    """
    workload = engine.workload
    gpu = ctx.gpu_of[rank]
    record = rank == engine.trace_worker
    claims = gpu_claim(rank)
    rank_flops = engine._rank_flops(rank)
    scale = 1.0 / micro
    p = f"w{rank}.mb{m}"

    lane.add(Task(
        f"{p}.start", TaskKind.GATE, waits=("iteration_start",),
        worker=rank, traced=False,
    ))

    def entry_task(block, phase):
        if m != 0:
            return
        index = block.index
        lane.add(Task(
            f"{p}.{phase}.b{index}.entry", TaskKind.GATE,
            signals=(entry_label(phase, index, rank),),
            worker=rank, block=index, phase=phase, traced=False,
        ))

    def moe_tasks(block, phase):
        index = block.index
        strategy = runner[index]
        if strategy.micro_capable:
            lane.add(*strategy.micro_worker_tasks(
                ctx, rank, index, phase, m, micro
            ))
            return
        # Full-batch rendezvous: lane 0 waits for every sibling lane to
        # reach the block, runs the block once, then releases them.  Lane 0
        # rendezvouses with itself implicitly, so only siblings signal.
        rv = f"rv.{phase}.b{index}.w{rank}"
        if m != 0:
            lane.add(Task(
                f"{p}.{phase}.b{index}.rv", TaskKind.GATE,
                signals=(f"{rv}.mb{m}",),
                worker=rank, block=index, phase=phase, traced=False,
            ))
        if m == 0:
            siblings = tuple(
                f"{rv}.mb{i}" for i in range(micro) if i != 0
            )
            if siblings:
                lane.add(Task(
                    f"{p}.{phase}.b{index}.gather", TaskKind.GATE,
                    waits=siblings, worker=rank, block=index, phase=phase,
                    traced=False,
                ))
            lane.add(*strategy.worker_tasks(ctx, rank, index, phase))
            lane.add(Task(
                f"{p}.{phase}.b{index}.release", TaskKind.GATE,
                signals=(f"{rv}.done",),
                worker=rank, block=index, phase=phase, traced=False,
            ))
        else:
            lane.add(Task(
                f"{p}.{phase}.b{index}.released", TaskKind.GATE,
                waits=(f"{rv}.done",),
                worker=rank, block=index, phase=phase, traced=False,
            ))

    for block in workload.blocks:
        index = block.index
        if block.is_moe:
            entry_task(block, "fwd")
        lane.add(Task(
            f"{p}.fwd.b{index}.dense", TaskKind.DENSE_COMPUTE,
            body=_dense_body(
                engine, ctx, rank, gpu, block, 1.0, scale, record,
                f"fwd:mb{m}", rank_flops,
            ),
            claims=claims, worker=rank, block=index, phase="fwd",
            detail=f"fwd:mb{m}",
        ))
        if block.is_moe:
            moe_tasks(block, "fwd")
        if record and m == 0:
            lane.add(Task(
                f"{p}.fwd.b{index}.mark", TaskKind.GATE,
                body=_mark_body(ctx, rank, index),
                worker=rank, block=index, traced=False,
            ))

    if forward_only:
        return

    for block in reversed(workload.blocks):
        index = block.index
        if block.is_moe:
            entry_task(block, "bwd")
            moe_tasks(block, "bwd")
        lane.add(Task(
            f"{p}.bwd.b{index}.dense", TaskKind.DENSE_COMPUTE,
            body=_dense_body(
                engine, ctx, rank, gpu, block, _BACKWARD, scale, False,
                f"bwd:mb{m}", rank_flops,
            ),
            claims=claims, worker=rank, block=index, phase="bwd",
            detail=f"bwd:mb{m}",
        ))
        if allreduce == "overlap":
            lane.add(Task(
                f"{p}.bwd.b{index}.grad-ready", TaskKind.GATE,
                signals=(_bdense_label(index, rank, m),),
                worker=rank, block=index, phase="bwd", traced=False,
            ))
    if allreduce == "serial":
        lane.add(Task(
            f"{p}.done", TaskKind.GATE, signals=(_done_label(rank, m),),
            worker=rank, traced=False,
        ))


# -- gradient all-reduce lanes ---------------------------------------------


def _allreduce_body(engine, ctx, index, nbytes, detail):
    def body():
        start = ctx.env.now
        yield all_reduce(
            ctx.fabric, nbytes,
            hierarchical=engine.features.hierarchical_a2a,
        )
        ctx.trace.record(
            "comm.allreduce", start, ctx.env.now, block=index, detail=detail,
        )

    return body


def _build_allreduce_lanes(engine, ctx, graph, micro) -> List[Lane]:
    """Dense-gradient all-reduce of every block's non-expert parameters.

    ``serial`` runs one lane after the whole backward sweep — the classic
    unoverlapped baseline.  ``overlap`` gives each block its own lane that
    fires as soon as every worker lane finished that block's backward
    dense compute, so the all-reduce rides the idle link time of the
    remaining (earlier-block) backward work.  Overlap lanes run at simkit
    dispatch priority 2: they only start once same-instant foreground work
    has been scheduled.
    """
    mode = engine.features.grad_allreduce
    workload = engine.workload
    config = workload.config
    world = workload.world_size
    micros = range(micro) if micro > 1 else (None,)
    lanes: List[Lane] = []
    if mode == "serial":
        lane = graph.lane("allreduce.serial", role="collector")
        lane.add(Task(
            "allreduce.barrier", TaskKind.GATE,
            waits=tuple(
                _done_label(rank, m) for rank in range(world) for m in micros
            ),
            traced=False,
        ))
        for block in reversed(workload.blocks):
            index = block.index
            lane.add(Task(
                f"allreduce.b{index}", TaskKind.GRAD_ALLREDUCE,
                body=_allreduce_body(
                    engine, ctx, index,
                    config.dense_param_bytes(index), "serial",
                ),
                block=index, phase="bwd", detail="serial",
            ))
        lanes.append(lane)
        return lanes
    for block in reversed(workload.blocks):
        index = block.index
        lane = graph.lane(
            f"allreduce.b{index}", role="collector", priority=2
        )
        lane.add(Task(
            f"allreduce.b{index}", TaskKind.GRAD_ALLREDUCE,
            waits=tuple(
                _bdense_label(index, rank, m)
                for rank in range(world)
                for m in micros
            ),
            body=_allreduce_body(
                engine, ctx, index, config.dense_param_bytes(index),
                "overlap",
            ),
            block=index, phase="bwd", detail="overlap", priority=2,
        ))
        lanes.append(lane)
    return lanes
