"""Unified Janus: per-block strategy selection (§5.1.3 "Discussion", §7.5).

Janus evaluates the gain ratio R for every MoE block before training starts
and runs blocks with R > 1 data-centric and the rest expert-centric.  The
selector is generalized over the block-strategy registry
(:mod:`repro.core.strategies`): the two sides of the R cut-over are
pluggable strategy names, so e.g. low-R blocks can run ``pipelined-ec``
instead of the plain synchronous All-to-All.  This module provides the
selection plus convenience constructors for the engine flavours compared in
the paper:

* ``expert_centric_engine`` — every MoE block uses All-to-All (the Tutel
  baseline and the "expert-centric paradigm in Janus" ablation baseline);
* ``data_centric_engine``   — every MoE block pulls experts;
* ``pipelined_expert_centric_engine`` — every MoE block uses the chunked,
  compute-overlapped All-to-All;
* ``unified_engine``        — per-block choice by R (full Janus);
* ``strategy_engine``       — every MoE block under any registered strategy.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

import numpy as np

from ..cluster import Cluster
from ..config import ModelConfig
from ..models.flops import expert_flops_per_token
from .context import JanusFeatures
from .engine import JanusEngine
from .paradigm import Paradigm
from .strategies import resolve_strategy_name, strategy_names
from .workload import IterationWorkload, build_workload

__all__ = [
    "paradigm_map",
    "strategy_map",
    "auto_schedule_map",
    "unified_engine",
    "auto_engine",
    "expert_centric_engine",
    "data_centric_engine",
    "pipelined_expert_centric_engine",
    "strategy_engine",
    "engine_for",
    "engine_modes",
]


def strategy_map(
    config: ModelConfig,
    cluster: Cluster,
    threshold: float = 1.0,
    low_r_strategy: str = "expert-centric",
    high_r_strategy: str = "data-centric",
) -> Dict[int, str]:
    """Per-MoE-block strategy choice by the R metric (Eq. 1).

    ``threshold`` is the conservative cut-over of §7.5: blocks with
    R <= threshold run ``low_r_strategy`` (the paper raises it above 1 when
    the deployed data-centric path cannot reach the analytic bound, e.g.
    PCIe capping cache-fill bandwidth).  Both sides are registered
    block-strategy names, so the selector chooses among N pluggable
    strategies, not a binary enum.
    """
    from .paradigm import gain_ratio

    low = resolve_strategy_name(low_r_strategy)
    high = resolve_strategy_name(high_r_strategy)
    if threshold <= 0:
        raise ValueError("threshold must be positive")
    mapping = {}
    world = cluster.num_machines * cluster.gpus_per_machine
    for index in config.moe_block_indices:
        ratio = gain_ratio(
            config.batch_size,
            config.seq_len,
            config.top_k,
            cluster.num_machines,
            config.hidden_dim,
            config.experts_per_worker(index, world),
        )
        mapping[index] = high if ratio > threshold else low
    return mapping


def auto_schedule_map(
    config: ModelConfig,
    cluster: Cluster,
    threshold: float = 1.0,
    micro_batches: int = 4,
) -> Dict[int, str]:
    """Per-block schedule selection extending Eq. 1 with the micro-batch
    pipelining test (task-graph scheduler).

    Blocks with R > ``threshold`` still run data-centric — pipelining
    cannot beat not moving the tokens at all.  For the low-R blocks the
    selector estimates one phase's All-to-All time (the Eq. 1 traffic over
    the machine's aggregate NIC bandwidth) and expert-compute time, and
    picks ``microbatch-ec`` when the overlap win —
    ``min(comm, compute) * (1 - 1/M)`` — exceeds the pipelining cost of
    ``(M-1)`` extra kernel-launch sweeps; otherwise the plain synchronous
    ``expert-centric`` block is kept.
    """
    from .paradigm import comm_expert_centric, gain_ratio

    if micro_batches <= 0:
        raise ValueError("micro_batches must be positive")
    mapping: Dict[int, str] = {}
    spec = cluster.spec
    n = cluster.num_machines
    m = cluster.gpus_per_machine
    world = n * m
    gpu_flops = spec.gpu.effective_flops(config.hidden_dim)
    eflops = expert_flops_per_token(config.hidden_dim, config.ffn_mult)
    for index in config.moe_block_indices:
        experts_per_worker = config.experts_per_worker(index, world)
        ratio = gain_ratio(
            config.batch_size, config.seq_len, config.top_k,
            n, config.hidden_dim, experts_per_worker,
        )
        if ratio > threshold:
            mapping[index] = "data-centric"
            continue
        comm_s = comm_expert_centric(
            config.hidden_dim, config.tokens_per_worker, m, n,
            config.dtype_bytes,
        ) / (spec.num_nics * spec.nic.bandwidth)
        compute_s = (
            config.tokens_per_worker * eflops / gpu_flops
            + spec.gpu.kernel_overhead * experts_per_worker
        )
        overlap_win = min(comm_s, compute_s) * (1.0 - 1.0 / micro_batches)
        pipeline_cost = (
            (micro_batches - 1)
            * spec.gpu.kernel_overhead
            * experts_per_worker
        )
        mapping[index] = (
            "microbatch-ec" if overlap_win > pipeline_cost
            else "expert-centric"
        )
    return mapping


def paradigm_map(
    config: ModelConfig, cluster: Cluster, threshold: float = 1.0
) -> Dict[int, Paradigm]:
    """Legacy view of :func:`strategy_map` as :class:`Paradigm` members."""
    return {
        index: Paradigm(name)
        for index, name in strategy_map(
            config, cluster, threshold=threshold
        ).items()
    }


def _workload(
    config: ModelConfig,
    cluster: Cluster,
    workload: Optional[IterationWorkload],
    imbalance: float,
    rng: Optional[np.random.Generator],
) -> IterationWorkload:
    if workload is not None:
        return workload
    return build_workload(config, cluster, imbalance=imbalance, rng=rng)


def unified_engine(
    config: ModelConfig,
    cluster: Cluster,
    features: Optional[JanusFeatures] = None,
    workload: Optional[IterationWorkload] = None,
    imbalance: float = 0.0,
    rng: Optional[np.random.Generator] = None,
    check_memory: bool = True,
    threshold: float = 1.0,
    low_r_strategy: str = "expert-centric",
    high_r_strategy: str = "data-centric",
    fault_plan=None,
    resilience=None,
    degradation=None,
    controller=None,
    metrics=None,
    trace=None,
    scheduler: str = "taskgraph",
) -> JanusEngine:
    """Full Janus: per-block strategy by R (see :func:`strategy_map`)."""
    return JanusEngine(
        cluster,
        _workload(config, cluster, workload, imbalance, rng),
        strategy_map(
            config, cluster, threshold=threshold,
            low_r_strategy=low_r_strategy, high_r_strategy=high_r_strategy,
        ),
        features=features,
        check_memory=check_memory,
        fault_plan=fault_plan,
        resilience=resilience,
        degradation=degradation,
        controller=controller,
        metrics=metrics,
        trace=trace,
        scheduler=scheduler,
    )


def auto_engine(
    config: ModelConfig,
    cluster: Cluster,
    features: Optional[JanusFeatures] = None,
    workload: Optional[IterationWorkload] = None,
    imbalance: float = 0.0,
    rng: Optional[np.random.Generator] = None,
    check_memory: bool = True,
    threshold: float = 1.0,
    fault_plan=None,
    resilience=None,
    degradation=None,
    controller=None,
    metrics=None,
    trace=None,
    scheduler: str = "taskgraph",
) -> JanusEngine:
    """Schedule-aware unified Janus: per-block choice among data-centric,
    micro-batched and plain expert-centric (see :func:`auto_schedule_map`),
    with the backward dense-gradient all-reduce overlapped by default."""
    if features is None:
        features = JanusFeatures()
    if features.grad_allreduce == "none":
        features = dataclasses.replace(features, grad_allreduce="overlap")
    return JanusEngine(
        cluster,
        _workload(config, cluster, workload, imbalance, rng),
        auto_schedule_map(
            config, cluster, threshold=threshold,
            micro_batches=features.micro_batches,
        ),
        features=features,
        check_memory=check_memory,
        fault_plan=fault_plan,
        resilience=resilience,
        degradation=degradation,
        controller=controller,
        metrics=metrics,
        trace=trace,
        scheduler=scheduler,
    )


def strategy_engine(
    strategy: str,
    config: ModelConfig,
    cluster: Cluster,
    features: Optional[JanusFeatures] = None,
    workload: Optional[IterationWorkload] = None,
    imbalance: float = 0.0,
    rng: Optional[np.random.Generator] = None,
    check_memory: bool = True,
    fault_plan=None,
    resilience=None,
    degradation=None,
    controller=None,
    metrics=None,
    trace=None,
    scheduler: str = "taskgraph",
) -> JanusEngine:
    """Every MoE block under one registered block strategy."""
    name = resolve_strategy_name(strategy)
    return JanusEngine(
        cluster,
        _workload(config, cluster, workload, imbalance, rng),
        {index: name for index in config.moe_block_indices},
        features=features,
        check_memory=check_memory,
        fault_plan=fault_plan,
        resilience=resilience,
        degradation=degradation,
        controller=controller,
        metrics=metrics,
        trace=trace,
        scheduler=scheduler,
    )


def expert_centric_engine(
    config: ModelConfig, cluster: Cluster, **kwargs
) -> JanusEngine:
    """Every MoE block over All-to-All (Tutel-equivalent baseline)."""
    return strategy_engine("expert-centric", config, cluster, **kwargs)


def data_centric_engine(
    config: ModelConfig, cluster: Cluster, **kwargs
) -> JanusEngine:
    """Every MoE block pulls experts (pure data-centric)."""
    return strategy_engine("data-centric", config, cluster, **kwargs)


def pipelined_expert_centric_engine(
    config: ModelConfig, cluster: Cluster, **kwargs
) -> JanusEngine:
    """Every MoE block over chunked, compute-overlapped All-to-All."""
    return strategy_engine("pipelined-ec", config, cluster, **kwargs)


def engine_modes() -> tuple:
    """Mode names accepted by :func:`engine_for` (and the CLI): every
    registered block strategy plus the R-driven ``"unified"`` selector and
    the schedule-aware ``"auto"`` selector."""
    return tuple(strategy_names()) + ("unified", "auto")


def engine_for(
    mode: str,
    config: ModelConfig,
    cluster: Cluster,
    **kwargs,
) -> JanusEngine:
    """Engine factory by mode name (see :func:`engine_modes`)."""
    if mode == "unified":
        return unified_engine(config, cluster, **kwargs)
    if mode == "auto":
        return auto_engine(config, cluster, **kwargs)
    if mode in strategy_names():
        return strategy_engine(mode, config, cluster, **kwargs)
    raise ValueError(
        f"unknown mode {mode!r}; expected one of {sorted(engine_modes())}"
    )
