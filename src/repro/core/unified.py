"""Unified Janus: per-block paradigm selection (§5.1.3 "Discussion", §7.5).

Janus evaluates the gain ratio R for every MoE block before training starts
and runs blocks with R > 1 data-centric and the rest expert-centric.  This
module provides the selection plus convenience constructors for the three
engine flavours compared in the paper:

* ``expert_centric_engine`` — every MoE block uses All-to-All (the Tutel
  baseline and the "expert-centric paradigm in Janus" ablation baseline);
* ``data_centric_engine``   — every MoE block pulls experts;
* ``unified_engine``        — per-block choice by R (full Janus).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..cluster import Cluster
from ..config import ModelConfig
from .context import JanusFeatures
from .engine import JanusEngine
from .paradigm import Paradigm
from .workload import IterationWorkload, build_workload

__all__ = [
    "paradigm_map",
    "unified_engine",
    "expert_centric_engine",
    "data_centric_engine",
    "engine_for",
]


def paradigm_map(
    config: ModelConfig, cluster: Cluster, threshold: float = 1.0
) -> Dict[int, Paradigm]:
    """Per-MoE-block paradigm choice by the R metric (Eq. 1).

    ``threshold`` is the conservative cut-over of §7.5: blocks with
    R <= threshold run expert-centric (the paper raises it above 1 when the
    deployed data-centric path cannot reach the analytic bound, e.g. PCIe
    capping cache-fill bandwidth).
    """
    from .paradigm import gain_ratio, select_paradigm

    mapping = {}
    world = cluster.num_machines * cluster.gpus_per_machine
    for index in config.moe_block_indices:
        ratio = gain_ratio(
            config.batch_size,
            config.seq_len,
            config.top_k,
            cluster.num_machines,
            config.hidden_dim,
            config.experts_per_worker(index, world),
        )
        mapping[index] = select_paradigm(ratio, threshold=threshold)
    return mapping


def _workload(
    config: ModelConfig,
    cluster: Cluster,
    workload: Optional[IterationWorkload],
    imbalance: float,
    rng: Optional[np.random.Generator],
) -> IterationWorkload:
    if workload is not None:
        return workload
    return build_workload(config, cluster, imbalance=imbalance, rng=rng)


def unified_engine(
    config: ModelConfig,
    cluster: Cluster,
    features: Optional[JanusFeatures] = None,
    workload: Optional[IterationWorkload] = None,
    imbalance: float = 0.0,
    rng: Optional[np.random.Generator] = None,
    check_memory: bool = True,
    threshold: float = 1.0,
) -> JanusEngine:
    """Full Janus: per-block paradigm by R (see :func:`paradigm_map`)."""
    return JanusEngine(
        cluster,
        _workload(config, cluster, workload, imbalance, rng),
        paradigm_map(config, cluster, threshold=threshold),
        features=features,
        check_memory=check_memory,
    )


def _uniform_engine(
    paradigm: Paradigm,
    config: ModelConfig,
    cluster: Cluster,
    features: Optional[JanusFeatures],
    workload: Optional[IterationWorkload],
    imbalance: float,
    rng: Optional[np.random.Generator],
    check_memory: bool,
) -> JanusEngine:
    return JanusEngine(
        cluster,
        _workload(config, cluster, workload, imbalance, rng),
        {index: paradigm for index in config.moe_block_indices},
        features=features,
        check_memory=check_memory,
    )


def expert_centric_engine(
    config: ModelConfig,
    cluster: Cluster,
    features: Optional[JanusFeatures] = None,
    workload: Optional[IterationWorkload] = None,
    imbalance: float = 0.0,
    rng: Optional[np.random.Generator] = None,
    check_memory: bool = True,
) -> JanusEngine:
    """Every MoE block over All-to-All (Tutel-equivalent baseline)."""
    return _uniform_engine(
        Paradigm.EXPERT_CENTRIC, config, cluster, features, workload,
        imbalance, rng, check_memory,
    )


def data_centric_engine(
    config: ModelConfig,
    cluster: Cluster,
    features: Optional[JanusFeatures] = None,
    workload: Optional[IterationWorkload] = None,
    imbalance: float = 0.0,
    rng: Optional[np.random.Generator] = None,
    check_memory: bool = True,
) -> JanusEngine:
    """Every MoE block pulls experts (pure data-centric)."""
    return _uniform_engine(
        Paradigm.DATA_CENTRIC, config, cluster, features, workload,
        imbalance, rng, check_memory,
    )


def engine_for(
    mode: str,
    config: ModelConfig,
    cluster: Cluster,
    **kwargs,
) -> JanusEngine:
    """Engine factory by mode name: "expert-centric", "data-centric",
    or "unified"."""
    factories = {
        "expert-centric": expert_centric_engine,
        "data-centric": data_centric_engine,
        "unified": unified_engine,
    }
    if mode not in factories:
        raise ValueError(
            f"unknown mode {mode!r}; expected one of {sorted(factories)}"
        )
    return factories[mode](config, cluster, **kwargs)
