"""Pluggable block-execution strategies for the timed Janus engine.

Importing this package registers the built-in strategies:

* ``expert-centric`` — bulk-synchronous All-to-All (Tutel baseline);
* ``data-centric``   — Janus Task Queue expert pulls;
* ``pipelined-ec``   — expert-centric with K-chunked All-to-All overlapped
  with expert compute (Parm/FlowMoE-style pipeline scheduling);
* ``microbatch-ec``  — expert-centric split into M interleaved micro-batch
  pipelines (task-graph scheduler only).

New paradigms subclass :class:`BlockStrategy` and register with
``@register_strategy``; the engine, the unified selector and the CLI pick
them up by name.
"""

from .base import (
    BlockStrategy,
    comm_family,
    get_strategy,
    register_strategy,
    resolve_strategy_name,
    strategy_names,
)
# Import order fixes registration order, which in turn fixes the engine's
# coordinator/scheduler spawn order and the memory-estimate term order:
# expert-centric coordinators spawn before data-centric schedulers, exactly
# as the pre-strategy engine did (bit-identical timings).
from .expert_centric import ExpertCentricStrategy
from .data_centric import DataCentricStrategy
from .pipelined import PipelinedExpertCentricStrategy
# microbatch-ec registers last: appending keeps every pre-existing
# registration index (and thus spawn/memory-term order) unchanged.
from .microbatch import MicroBatchExpertCentricStrategy

__all__ = [
    "BlockStrategy",
    "DataCentricStrategy",
    "ExpertCentricStrategy",
    "MicroBatchExpertCentricStrategy",
    "PipelinedExpertCentricStrategy",
    "comm_family",
    "get_strategy",
    "register_strategy",
    "resolve_strategy_name",
    "strategy_names",
]
