"""Expert-centric block execution: bulk-synchronous All-to-All.

The Tutel-equivalent baseline and the expert-centric mode of unified Janus:
all workers rendezvous at the block, a coordinator runs the dispatch
All-to-All, every worker computes its resident experts on the received
tokens, and the combine All-to-All returns the results.
"""

from __future__ import annotations

from types import SimpleNamespace
from typing import Tuple

from ...netsim import all_to_all
from ...simkit import AllOf
from ..memory_model import EC_A2A_SLACK
from ..taskgraph import Task, TaskKind, gpu_claim
from .base import BlockStrategy, register_strategy

__all__ = ["ExpertCentricStrategy"]

_BACKWARD = 2.0


@register_strategy
class ExpertCentricStrategy(BlockStrategy):
    """Synchronous dispatch-compute-combine over All-to-All (§2.2)."""

    name = "expert-centric"

    def setup(self, ctx, forward_only: bool) -> None:
        self._sync = {}
        world = self.engine.workload.world_size
        phases = ("fwd",) if forward_only else ("fwd", "bwd")
        for index in self.blocks:
            for phase in phases:
                self._sync[(phase, index)] = SimpleNamespace(
                    arrive=[ctx.env.event() for _ in range(world)],
                    computed=[ctx.env.event() for _ in range(world)],
                    dispatch_done=ctx.env.event(),
                    combine_done=ctx.env.event(),
                )

    def spawn_processes(self, ctx, forward_only: bool) -> None:
        for (phase, index) in self._sync:
            ctx.env.process(self._coordinator(ctx, index, phase))

    def run_block(self, ctx, rank: int, index: int, phase: str):
        engine = self.engine
        sync = self._sync[(phase, index)]
        workload = engine.workload
        block = workload.blocks[index]
        placement = ctx.placements[index]
        gpu_flops = engine._rank_flops(rank)
        mult = _BACKWARD if phase == "bwd" else 1.0

        sync.arrive[rank].succeed()
        yield sync.dispatch_done
        received = sum(
            int(block.routing[:, expert].sum())
            for expert in placement.experts_of(rank)
        )
        # One batched GEMM group per resident expert: the expert-centric
        # paradigm pays far fewer kernel launches than fine-grained pulls.
        overhead = (
            engine.cluster.spec.gpu.kernel_overhead
            * placement.experts_per_worker
        )
        seconds = engine._jittered(
            (received * workload.expert_flops / gpu_flops + overhead) * mult
        )
        start = ctx.env.now
        yield ctx.env.process(ctx.fabric.compute(ctx.gpu_of[rank], seconds))
        if rank == engine.trace_worker:
            ctx.trace.record(
                "compute.expert", start, ctx.env.now,
                worker=rank, block=index, detail=f"{phase}:ec",
            )
        sync.computed[rank].succeed()
        yield sync.combine_done

    def _coordinator(self, ctx, index: int, phase: str):
        engine = self.engine
        sync = self._sync[(phase, index)]
        workload = engine.workload
        block = workload.blocks[index]
        placement = ctx.placements[index]
        dispatch = block.tokens_sent_matrix(placement, workload.token_bytes)
        combine = dispatch.T

        yield AllOf(ctx.env, sync.arrive)
        start = ctx.env.now
        yield all_to_all(
            ctx.fabric, dispatch,
            hierarchical=engine.features.hierarchical_a2a,
        )
        ctx.trace.record(
            "comm.a2a", start, ctx.env.now,
            block=index, detail=f"{phase}-dispatch",
        )
        sync.dispatch_done.succeed()
        yield AllOf(ctx.env, sync.computed)
        start = ctx.env.now
        yield all_to_all(
            ctx.fabric, combine,
            hierarchical=engine.features.hierarchical_a2a,
        )
        ctx.trace.record(
            "comm.a2a", start, ctx.env.now,
            block=index, detail=f"{phase}-combine",
        )
        sync.combine_done.succeed()

    # -- task-graph builders ---------------------------------------------------

    def _label(self, phase: str, index: int) -> str:
        return f"{self.name}.{phase}.b{index}"

    def _compute_body(self, ctx, rank: int, index: int, phase: str):
        """The expert-compute section of :meth:`run_block`, as a task body
        (identical arithmetic, trace and jitter-draw order)."""
        engine = self.engine

        def body():
            workload = engine.workload
            block = workload.blocks[index]
            placement = ctx.placements[index]
            gpu_flops = engine._rank_flops(rank)
            mult = _BACKWARD if phase == "bwd" else 1.0
            received = sum(
                int(block.routing[:, expert].sum())
                for expert in placement.experts_of(rank)
            )
            overhead = (
                engine.cluster.spec.gpu.kernel_overhead
                * placement.experts_per_worker
            )
            seconds = engine._jittered(
                (received * workload.expert_flops / gpu_flops + overhead)
                * mult
            )
            start = ctx.env.now
            yield ctx.env.process(
                ctx.fabric.compute(ctx.gpu_of[rank], seconds)
            )
            if rank == engine.trace_worker:
                ctx.trace.record(
                    "compute.expert", start, ctx.env.now,
                    worker=rank, block=index, detail=f"{phase}:ec",
                )

        return body

    def _a2a_body(self, ctx, index: int, phase: str, combine: bool):
        engine = self.engine

        def body():
            workload = engine.workload
            block = workload.blocks[index]
            placement = ctx.placements[index]
            matrix = block.tokens_sent_matrix(
                placement, workload.token_bytes
            )
            if combine:
                matrix = matrix.T
            start = ctx.env.now
            yield all_to_all(
                ctx.fabric, matrix,
                hierarchical=engine.features.hierarchical_a2a,
            )
            ctx.trace.record(
                "comm.a2a", start, ctx.env.now, block=index,
                detail=f"{phase}-{'combine' if combine else 'dispatch'}",
            )

        return body

    def worker_tasks(self, ctx, rank: int, index: int, phase: str):
        p = self._label(phase, index)
        return [
            Task(
                f"{p}.w{rank}.arrive", TaskKind.GATE,
                signals=(f"{p}.arrive.{rank}",),
                worker=rank, block=index, phase=phase, traced=False,
            ),
            Task(
                f"{p}.w{rank}.compute", TaskKind.EXPERT_COMPUTE,
                waits=(f"{p}.dispatched",),
                signals=(f"{p}.computed.{rank}",),
                body=self._compute_body(ctx, rank, index, phase),
                claims=gpu_claim(rank),
                worker=rank, block=index, phase=phase, detail=f"{phase}:ec",
            ),
            Task(
                f"{p}.w{rank}.leave", TaskKind.GATE,
                waits=(f"{p}.combined",),
                worker=rank, block=index, phase=phase, traced=False,
            ),
        ]

    def service_lanes(self, ctx, graph, forward_only: bool):
        lanes = []
        world = self.engine.workload.world_size
        phases = ("fwd",) if forward_only else ("fwd", "bwd")
        for index in self.blocks:
            for phase in phases:
                p = self._label(phase, index)
                lane = graph.lane(f"{p}.coordinator", role="service")
                lane.add(Task(
                    f"{p}.a2a-dispatch", TaskKind.A2A_CHUNK,
                    waits=tuple(f"{p}.arrive.{r}" for r in range(world)),
                    signals=(f"{p}.dispatched",),
                    body=self._a2a_body(ctx, index, phase, combine=False),
                    block=index, phase=phase, detail=f"{phase}-dispatch",
                ))
                lane.add(Task(
                    f"{p}.a2a-combine", TaskKind.A2A_CHUNK,
                    waits=tuple(f"{p}.computed.{r}" for r in range(world)),
                    signals=(f"{p}.combined",),
                    body=self._a2a_body(ctx, index, phase, combine=True),
                    block=index, phase=phase, detail=f"{phase}-combine",
                ))
                lanes.append(lane)
        return lanes

    @classmethod
    def memory_terms(
        cls, config, num_blocks: int, credit_size: int, pipeline_chunks: int,
    ) -> Tuple[float, ...]:
        """Capacity-padded dispatch+combine payload copies alive until the
        block's backward completes — the Tutel buffer bloat of Fig. 16."""
        routed = config.tokens_per_worker * config.token_bytes
        return (EC_A2A_SLACK * 2.0 * routed * num_blocks,)
