"""Data-centric block execution: the Janus Task Queue pull pipeline.

Blocks run through per-worker Intra-Node Schedulers pulling experts
(credit-gated, optionally staggered and peer-scheduled) while per-machine
Inter-Node Schedulers fetch external experts into the cache; workers
compute each expert as it arrives and push gradients home in the backward
sweep (pre-reduced per machine when the hierarchical cache is on).
"""

from __future__ import annotations

from typing import List, Tuple

from ...cluster import Device
from ..inter_scheduler import InterNodeScheduler
from ..intra_scheduler import IntraNodeScheduler
from ..taskgraph import Task, TaskKind
from .base import BlockStrategy, register_strategy

__all__ = ["DataCentricStrategy"]

_BACKWARD = 2.0


@register_strategy
class DataCentricStrategy(BlockStrategy):
    """Fine-grained expert pulls through the Janus Task Queue (§4, §5)."""

    name = "data-centric"
    uses_task_queue = True

    def spawn_processes(self, ctx, forward_only: bool) -> None:
        if not ctx.dc_block_indices:
            return
        phases = ("fwd",) if forward_only else ("fwd", "bwd")
        for rank in range(self.engine.workload.world_size):
            scheduler = IntraNodeScheduler(ctx, rank)
            for phase in phases:
                ctx.env.process(scheduler.pull_pipeline(phase))
        if ctx.features.hierarchical:
            for machine in range(ctx.layout.num_machines):
                inter = InterNodeScheduler(ctx, machine)
                for chain in inter.fetch_pipelines():
                    ctx.env.process(chain)

    def spawn_grad_collectors(self, ctx) -> List:
        if not ctx.features.hierarchical or not ctx.dc_block_indices:
            return []
        processes = []
        for machine in range(ctx.layout.num_machines):
            inter = InterNodeScheduler(ctx, machine)
            for collector in inter.grad_collectors():
                processes.append(ctx.env.process(collector))
        return processes

    def run_block(self, ctx, rank: int, index: int, phase: str):
        engine = self.engine
        workload = engine.workload
        block = workload.blocks[index]
        gpu = ctx.gpu_of[rank]
        gpu_flops = engine._rank_flops(rank)
        backward = phase == "bwd"
        mult = _BACKWARD if backward else 1.0
        record = rank == engine.trace_worker
        routing = block.routing[rank]

        overhead = engine.cluster.spec.gpu.kernel_overhead

        def expert_seconds(expert: int) -> float:
            return engine._jittered(
                (routing[expert] * workload.expert_flops / gpu_flops + overhead)
                * mult
            )

        # Resident experts first — they need no communication at all.
        for expert in ctx.own_experts_with_tokens(index, rank):
            start = ctx.env.now
            yield ctx.env.process(
                ctx.fabric.compute(gpu, expert_seconds(expert))
            )
            if record:
                ctx.trace.record(
                    "compute.expert", start, ctx.env.now,
                    worker=rank, block=index, detail=f"{phase}:own:{expert}",
                )

        needed = ctx.needed_experts(index, rank)
        store = ctx.ready_store(phase, index, rank)
        for _ in range(len(needed)):
            expert = yield store.get()
            start = ctx.env.now
            yield ctx.env.process(
                ctx.fabric.compute(gpu, expert_seconds(expert))
            )
            if record:
                ctx.trace.record(
                    "compute.expert", start, ctx.env.now,
                    worker=rank, block=index, detail=f"{phase}:{expert}",
                )
            ctx.credits[rank].put(1)
            if not backward:
                # Offload the used expert to host memory for backward reuse
                # (asynchronous; does not block the pipeline).
                ctx.fabric.transfer(
                    gpu,
                    Device.host(ctx.layout.machine_of(rank)),
                    workload.expert_bytes,
                    tag=("offload", index, rank, expert),
                )
            else:
                self._push_gradient(ctx, rank, index, expert)

    # -- task-graph builders ---------------------------------------------------

    def service_lanes(self, ctx, graph, forward_only: bool):
        if not ctx.dc_block_indices:
            return []
        lanes = []
        phases = ("fwd",) if forward_only else ("fwd", "bwd")
        for rank in range(self.engine.workload.world_size):
            # One scheduler per rank shared by both phases, exactly as in
            # spawn_processes — its credit/cache state spans the iteration.
            scheduler = IntraNodeScheduler(ctx, rank)
            for phase in phases:
                lane = graph.lane(
                    f"dc.pull.w{rank}.{phase}", role="service", worker=rank,
                )
                lane.add(Task(
                    f"dc.pull.w{rank}.{phase}", TaskKind.PULL,
                    body=lambda s=scheduler, p=phase: s.pull_pipeline(p),
                    worker=rank, phase=phase, detail="intra-pull",
                ))
                lanes.append(lane)
        if ctx.features.hierarchical:
            for machine in range(ctx.layout.num_machines):
                inter = InterNodeScheduler(ctx, machine)
                for nic, chain in enumerate(inter.fetch_pipelines()):
                    lane = graph.lane(
                        f"dc.fetch.m{machine}.{nic}", role="service",
                    )
                    lane.add(Task(
                        f"dc.fetch.m{machine}.{nic}", TaskKind.PULL,
                        body=lambda c=chain: c,
                        detail=f"inter-fetch machine={machine}",
                    ))
                    lanes.append(lane)
        return lanes

    def collector_lanes(self, ctx, graph):
        if not ctx.features.hierarchical or not ctx.dc_block_indices:
            return []
        lanes = []
        for machine in range(ctx.layout.num_machines):
            inter = InterNodeScheduler(ctx, machine)
            for i, collector in enumerate(inter.grad_collectors()):
                lane = graph.lane(f"dc.grad.m{machine}.{i}", role="collector")
                lane.add(Task(
                    f"dc.grad.m{machine}.{i}", TaskKind.PULL,
                    body=lambda c=collector: c,
                    detail=f"grad-collect machine={machine}",
                ))
                lanes.append(lane)
        return lanes

    def _push_gradient(self, ctx, rank: int, index: int, expert: int):
        workload = self.engine.workload
        placement = ctx.placements[index]
        owner = placement.owner(expert)
        machine = ctx.layout.machine_of(rank)
        owner_machine = ctx.layout.machine_of(owner)
        gpu = ctx.gpu_of[rank]
        if owner_machine == machine:
            flow = ctx.fabric.transfer(
                gpu, ctx.gpu_of[owner], workload.expert_bytes,
                tag=("grad-internal", index, rank, expert),
            )
            ctx.grad_delivered.append(flow.done)
        elif ctx.features.hierarchical:
            flow = ctx.fabric.transfer(
                gpu, Device.host(machine), workload.expert_bytes,
                tag=("grad-stage", index, rank, expert),
            )
            ctx.env.process(
                _stage_grad(ctx, flow, index, machine, expert)
            )
        else:
            flow = ctx.fabric.transfer(
                gpu, ctx.gpu_of[owner], workload.expert_bytes,
                tag=("grad-direct", index, rank, expert),
            )
            ctx.grad_delivered.append(flow.done)

    @classmethod
    def memory_terms(
        cls, config, num_blocks: int, credit_size: int, pipeline_chunks: int,
    ) -> Tuple[float, ...]:
        """The credit buffer (C experts) plus one expert's activations —
        independent of sequence length (§5.1.1)."""
        if not num_blocks:
            return ()
        return (
            credit_size * config.expert_bytes,
            config.ffn_mult * config.tokens_per_worker * config.token_bytes,
        )


def _stage_grad(ctx, flow, index: int, machine: int, expert: int):
    yield flow.done
    yield ctx.grad_contrib_store(index, machine, expert).put(1)
