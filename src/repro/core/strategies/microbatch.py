"""Micro-batched expert-centric execution (task-graph scheduler only).

Splits the global batch into M micro-batches and gives each its own worker
lane per rank, so the per-micro-batch block DAGs interleave: micro-batch
``i``'s expert compute overlaps micro-batch ``i+1``'s dispatch All-to-All
*across block boundaries* — the pipeline-parallel schedule of Parm/FlowMoE
generalized past a single block.  Each micro-batch carries 1/M of the
tokens (and of the dense flops, handled by the engine's micro worker
lanes) but pays the full kernel-launch overhead per block, which is the
cost that bounds useful M.

Under the legacy scheduler — or with ``micro_batches=1`` — this strategy
degrades to plain expert-centric behaviour (it inherits the synchronous
coordinator path); the engine refuses ``scheduler="legacy"`` with M > 1 so
the degradation is never silent.
"""

from __future__ import annotations

from ...netsim import all_to_all
from ..taskgraph import Task, TaskKind, gpu_claim
from .base import register_strategy
from .expert_centric import ExpertCentricStrategy

__all__ = ["MicroBatchExpertCentricStrategy"]

_BACKWARD = 2.0


@register_strategy
class MicroBatchExpertCentricStrategy(ExpertCentricStrategy):
    """Expert-centric with M interleaved micro-batch pipelines."""

    name = "microbatch-ec"
    micro_capable = True

    # -- micro-batch task bodies -----------------------------------------------

    def _micro_compute_body(self, ctx, rank: int, index: int, phase: str,
                            m: int, micro: int):
        engine = self.engine

        def body():
            workload = engine.workload
            block = workload.blocks[index]
            placement = ctx.placements[index]
            gpu_flops = engine._rank_flops(rank)
            mult = _BACKWARD if phase == "bwd" else 1.0
            received = sum(
                int(block.routing[:, expert].sum())
                for expert in placement.experts_of(rank)
            )
            # 1/M of the tokens, but the full per-expert kernel launch
            # cost every micro-batch — the price of pipelining.
            overhead = (
                engine.cluster.spec.gpu.kernel_overhead
                * placement.experts_per_worker
            )
            seconds = engine._jittered(
                (received / micro * workload.expert_flops / gpu_flops
                 + overhead) * mult
            )
            start = ctx.env.now
            yield ctx.env.process(
                ctx.fabric.compute(ctx.gpu_of[rank], seconds)
            )
            if rank == engine.trace_worker:
                ctx.trace.record(
                    "compute.expert", start, ctx.env.now,
                    worker=rank, block=index, detail=f"{phase}:ec:mb{m}",
                )

        return body

    def _micro_a2a_body(self, ctx, index: int, phase: str, m: int,
                        micro: int, combine: bool):
        engine = self.engine

        def body():
            workload = engine.workload
            block = workload.blocks[index]
            placement = ctx.placements[index]
            matrix = block.tokens_sent_matrix(
                placement, workload.token_bytes
            ) / micro
            if combine:
                matrix = matrix.T
            start = ctx.env.now
            yield all_to_all(
                ctx.fabric, matrix,
                hierarchical=engine.features.hierarchical_a2a,
            )
            side = "combine" if combine else "dispatch"
            ctx.trace.record(
                "comm.a2a", start, ctx.env.now, block=index,
                detail=f"{phase}-{side}:mb{m}",
            )

        return body

    # -- task-graph hooks ------------------------------------------------------

    def _micro_label(self, phase: str, index: int, m: int) -> str:
        return f"{self.name}.{phase}.b{index}.mb{m}"

    def micro_worker_tasks(self, ctx, rank: int, index: int, phase: str,
                           micro: int, micro_batches: int):
        p = self._micro_label(phase, index, micro)
        return [
            Task(
                f"{p}.w{rank}.arrive", TaskKind.GATE,
                signals=(f"{p}.arrive.{rank}",),
                worker=rank, block=index, phase=phase, traced=False,
            ),
            Task(
                f"{p}.w{rank}.compute", TaskKind.EXPERT_COMPUTE,
                waits=(f"{p}.dispatched",),
                signals=(f"{p}.computed.{rank}",),
                body=self._micro_compute_body(
                    ctx, rank, index, phase, micro, micro_batches
                ),
                claims=gpu_claim(rank),
                worker=rank, block=index, phase=phase,
                detail=f"{phase}:ec:mb{micro}",
            ),
            Task(
                f"{p}.w{rank}.leave", TaskKind.GATE,
                waits=(f"{p}.combined",),
                worker=rank, block=index, phase=phase, traced=False,
            ),
        ]

    def micro_service_lanes(self, ctx, graph, forward_only: bool,
                            micro_batches: int):
        lanes = []
        world = self.engine.workload.world_size
        phases = ("fwd",) if forward_only else ("fwd", "bwd")
        for index in self.blocks:
            for phase in phases:
                for m in range(micro_batches):
                    p = self._micro_label(phase, index, m)
                    lane = graph.lane(f"{p}.coordinator", role="service")
                    lane.add(Task(
                        f"{p}.a2a-dispatch", TaskKind.A2A_CHUNK,
                        waits=tuple(
                            f"{p}.arrive.{r}" for r in range(world)
                        ),
                        signals=(f"{p}.dispatched",),
                        body=self._micro_a2a_body(
                            ctx, index, phase, m, micro_batches,
                            combine=False,
                        ),
                        block=index, phase=phase,
                        detail=f"{phase}-dispatch:mb{m}",
                    ))
                    lane.add(Task(
                        f"{p}.a2a-combine", TaskKind.A2A_CHUNK,
                        waits=tuple(
                            f"{p}.computed.{r}" for r in range(world)
                        ),
                        signals=(f"{p}.combined",),
                        body=self._micro_a2a_body(
                            ctx, index, phase, m, micro_batches,
                            combine=True,
                        ),
                        block=index, phase=phase,
                        detail=f"{phase}-combine:mb{m}",
                    ))
                    lanes.append(lane)
        return lanes
