"""The block-execution strategy interface and its registry.

A :class:`BlockStrategy` encapsulates everything one *execution paradigm*
needs to run the MoE blocks assigned to it inside a simulated iteration:

* per-iteration setup (synchronization events, barriers),
* the per-rank block body executed by every worker in each phase,
* coordinator / scheduler processes that drive communication,
* gradient-collector processes for the backward sweep,
* its contribution to the per-GPU memory footprint.

Strategies are registered by name (``@register_strategy``) and the engine,
the unified selector, and the CLI all resolve strategy names through
:func:`get_strategy` — adding a new paradigm is a new module in this
package, not surgery on the engine core.  One strategy instance is created
per iteration and per engine, so instances may keep per-iteration state.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from enum import Enum
from typing import TYPE_CHECKING, ClassVar, Dict, List, Tuple, Type

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..context import IterationContext
    from ..engine import JanusEngine
    from ...config import ModelConfig

__all__ = [
    "BlockStrategy",
    "register_strategy",
    "get_strategy",
    "strategy_names",
    "resolve_strategy_name",
    "comm_family",
]


class BlockStrategy(ABC):
    """How one set of MoE blocks executes within a simulated iteration.

    ``blocks`` is the ascending tuple of MoE block indices this instance
    owns for the iteration; ``engine`` provides the workload, cluster,
    features, jitter and straggler models.
    """

    #: Registry key; also the CLI mode name.
    name: ClassVar[str]
    #: Whether the strategy's blocks are served by the Janus Task Queue
    #: (intra/inter-node schedulers, credits, caches).
    uses_task_queue: ClassVar[bool] = False
    #: Whether the strategy can split its blocks into micro-batches under
    #: the task-graph scheduler (implements ``micro_worker_tasks`` and
    #: ``micro_service_lanes``).
    micro_capable: ClassVar[bool] = False

    def __init__(self, engine: "JanusEngine", blocks: Tuple[int, ...]):
        self.engine = engine
        self.blocks = tuple(sorted(blocks))

    # -- lifecycle hooks -------------------------------------------------------

    def setup(self, ctx: "IterationContext", forward_only: bool) -> None:
        """Create per-iteration synchronization state (no processes yet)."""

    @abstractmethod
    def run_block(self, ctx: "IterationContext", rank: int, index: int,
                  phase: str):
        """Generator: one worker executes one of this strategy's blocks."""

    def spawn_processes(self, ctx: "IterationContext",
                        forward_only: bool) -> None:
        """Spawn coordinator/scheduler processes for the iteration."""

    def spawn_grad_collectors(self, ctx: "IterationContext") -> List:
        """Processes that must finish before the iteration ends (backward
        gradient plumbing); return the spawned process handles."""
        return []

    # -- task-graph hooks ------------------------------------------------------

    def worker_tasks(self, ctx: "IterationContext", rank: int, index: int,
                     phase: str) -> List:
        """Tasks a worker lane runs for one of this strategy's blocks.

        The default wraps :meth:`run_block` in one composite task, so any
        registered strategy works under the task-graph scheduler unchanged;
        native strategies override this to expose their real task DAG.
        """
        from ..taskgraph import Task, TaskKind

        return [Task(
            f"{self.name}.{phase}.b{index}.w{rank}",
            TaskKind.EXPERT_COMPUTE,
            body=lambda: self.run_block(ctx, rank, index, phase),
            worker=rank, block=index, phase=phase,
            detail=f"{phase}:{self.name}",
        )]

    def service_lanes(self, ctx: "IterationContext", graph,
                      forward_only: bool):
        """Coordinator/scheduler lanes for the task-graph scheduler.

        ``None`` (the default) makes the engine fall back to
        :meth:`spawn_processes` at the same point in the spawn order."""
        return None

    def collector_lanes(self, ctx: "IterationContext", graph):
        """Gradient-collector lanes; ``None`` falls back to
        :meth:`spawn_grad_collectors`."""
        return None

    def micro_worker_tasks(self, ctx: "IterationContext", rank: int,
                           index: int, phase: str, micro: int,
                           micro_batches: int) -> List:
        """Tasks micro-batch lane ``micro`` (of ``micro_batches``) runs for
        one block.  Only meaningful when ``micro_capable`` is True."""
        raise NotImplementedError(
            f"{self.name!r} is not micro-batch capable"
        )

    def micro_service_lanes(self, ctx: "IterationContext", graph,
                            forward_only: bool, micro_batches: int):
        """Per-micro-batch coordinator lanes (micro-capable strategies)."""
        raise NotImplementedError(
            f"{self.name!r} is not micro-batch capable"
        )

    # -- memory model ----------------------------------------------------------

    @classmethod
    def memory_terms(
        cls,
        config: "ModelConfig",
        num_blocks: int,
        credit_size: int,
        pipeline_chunks: int,
    ) -> Tuple[float, ...]:
        """Per-strategy GPU memory terms (bytes) for ``num_blocks`` blocks.

        Returned as individual terms so the aggregate estimate sums them in
        a deterministic order (bit-stable across refactors).
        """
        return ()


_REGISTRY: Dict[str, Type[BlockStrategy]] = {}


def register_strategy(cls: Type[BlockStrategy]) -> Type[BlockStrategy]:
    """Class decorator: add ``cls`` to the registry under ``cls.name``."""
    name = getattr(cls, "name", None)
    if not isinstance(name, str) or not name:
        raise ValueError(f"{cls!r} must define a non-empty `name`")
    existing = _REGISTRY.get(name)
    if existing is not None and existing is not cls:
        raise ValueError(f"strategy name {name!r} already registered")
    _REGISTRY[name] = cls
    return cls


def get_strategy(name: str) -> Type[BlockStrategy]:
    """Look up a strategy class by name; raises ValueError when unknown."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown block strategy {name!r}; "
            f"registered: {sorted(_REGISTRY)}"
        ) from None


def strategy_names() -> Tuple[str, ...]:
    """Registered strategy names, in registration order."""
    return tuple(_REGISTRY)


def resolve_strategy_name(spec) -> str:
    """Normalize a strategy spec (name, Paradigm, or class) to its name.

    Accepts a registered name, an enum member whose ``value`` is a
    registered name (:class:`~repro.core.paradigm.Paradigm`), or a
    :class:`BlockStrategy` subclass/instance.
    """
    if isinstance(spec, str):
        name = spec
    elif isinstance(spec, Enum):
        name = spec.value
    elif isinstance(spec, BlockStrategy) or (
        isinstance(spec, type) and issubclass(spec, BlockStrategy)
    ):
        name = spec.name
    else:
        raise ValueError(f"cannot resolve block strategy from {spec!r}")
    get_strategy(name)  # validate
    return name


def comm_family(spec) -> str:
    """The §5.1.3 byte-volume family a strategy moves on the wire.

    Strategies served by the Janus Task Queue pull experts to the data —
    the *data-centric* volume (``8 H^2 E m (n-1)`` elements); everything
    else ships tokens to the experts — the *expert-centric* volume
    (``2 m H T (n-1)/n``).  Pipelining and micro-batching reschedule when
    bytes move, not how many, so every registered expert-centric variant
    maps to the same family.  Consumers (e.g. the serving simulator's
    per-phase traffic model) size wire transfers from this.
    """
    name = resolve_strategy_name(spec)
    return (
        "data-centric"
        if get_strategy(name).uses_task_queue
        else "expert-centric"
    )
