"""Pipelined expert-centric execution: chunked All-to-All overlap.

Parm/FlowMoE-style pipeline scheduling for blocks where the data-centric
paradigm loses (R < 1) but the plain expert-centric block still serializes
communication and compute.  The dispatch and combine All-to-Alls are split
into K token chunks so that expert compute on chunk ``i`` overlaps the
dispatch All-to-All of chunk ``i+1`` and the combine All-to-All of chunk
``i-1``:

    plain EC:   [dispatch A2A][ expert compute ][combine A2A]
    pipelined:  [dA2A 0][dA2A 1][dA2A 2]...
                        [cmp 0] [cmp 1] [cmp 2]...
                                [cA2A 0][cA2A 1][cA2A 2]...

The block-level barrier semantics are unchanged — workers still leave the
block only after the last combine chunk lands — so the result is
numerically the same iteration, just with hidden communication time.  The
price is K× the kernel-launch overhead (every chunk re-launches each
resident expert's batched GEMM), which is why very large K loses again.

The chunk count is per block: ``JanusFeatures.chunks_for(index)`` — the
tuner's ``block_chunks`` override when one is set, else the global
``ec_pipeline_chunks``.
"""

from __future__ import annotations

from types import SimpleNamespace
from typing import Tuple

from ...netsim import all_to_all
from ...simkit import AllOf
from ..memory_model import EC_A2A_SLACK
from ..taskgraph import Task, TaskKind, gpu_claim
from .base import BlockStrategy, register_strategy

__all__ = ["PipelinedExpertCentricStrategy"]

_BACKWARD = 2.0


@register_strategy
class PipelinedExpertCentricStrategy(BlockStrategy):
    """Expert-centric with K-chunked, compute-overlapped All-to-All."""

    name = "pipelined-ec"

    def setup(self, ctx, forward_only: bool) -> None:
        self._sync = {}
        world = self.engine.workload.world_size
        phases = ("fwd",) if forward_only else ("fwd", "bwd")
        for index in self.blocks:
            chunks = self.engine.features.chunks_for(index)
            for phase in phases:
                self._sync[(phase, index)] = SimpleNamespace(
                    arrive=[ctx.env.event() for _ in range(world)],
                    chunk_dispatched=[
                        ctx.env.event() for _ in range(chunks)
                    ],
                    chunk_computed=[
                        [ctx.env.event() for _ in range(world)]
                        for _ in range(chunks)
                    ],
                    combine_done=ctx.env.event(),
                )

    def spawn_processes(self, ctx, forward_only: bool) -> None:
        for (phase, index) in self._sync:
            ctx.env.process(self._dispatcher(ctx, index, phase))
            ctx.env.process(self._combiner(ctx, index, phase))

    def run_block(self, ctx, rank: int, index: int, phase: str):
        engine = self.engine
        sync = self._sync[(phase, index)]
        workload = engine.workload
        block = workload.blocks[index]
        placement = ctx.placements[index]
        gpu_flops = engine._rank_flops(rank)
        mult = _BACKWARD if phase == "bwd" else 1.0
        chunks = engine.features.chunks_for(index)

        sync.arrive[rank].succeed()
        received = sum(
            int(block.routing[:, expert].sum())
            for expert in placement.experts_of(rank)
        )
        # Every chunk re-launches one batched GEMM group per resident
        # expert — the kernel-overhead cost of pipelining.
        overhead = (
            engine.cluster.spec.gpu.kernel_overhead
            * placement.experts_per_worker
        )
        for chunk in range(chunks):
            yield sync.chunk_dispatched[chunk]
            seconds = engine._jittered(
                (received / chunks * workload.expert_flops / gpu_flops
                 + overhead) * mult
            )
            start = ctx.env.now
            yield ctx.env.process(
                ctx.fabric.compute(ctx.gpu_of[rank], seconds)
            )
            if rank == engine.trace_worker:
                ctx.trace.record(
                    "compute.expert", start, ctx.env.now,
                    worker=rank, block=index,
                    detail=f"{phase}:pec:{chunk}",
                )
            sync.chunk_computed[chunk][rank].succeed()
        yield sync.combine_done

    # -- coordinators ----------------------------------------------------------

    def _chunk_matrix(self, ctx, index: int):
        workload = self.engine.workload
        block = workload.blocks[index]
        placement = ctx.placements[index]
        dispatch = block.tokens_sent_matrix(placement, workload.token_bytes)
        return dispatch / self.engine.features.chunks_for(index)

    def _dispatcher(self, ctx, index: int, phase: str):
        engine = self.engine
        sync = self._sync[(phase, index)]
        chunk = self._chunk_matrix(ctx, index)
        yield AllOf(ctx.env, sync.arrive)
        for i in range(engine.features.chunks_for(index)):
            start = ctx.env.now
            yield all_to_all(
                ctx.fabric, chunk,
                hierarchical=engine.features.hierarchical_a2a,
            )
            ctx.trace.record(
                "comm.a2a", start, ctx.env.now,
                block=index, detail=f"{phase}-dispatch:{i}",
            )
            sync.chunk_dispatched[i].succeed()

    def _combiner(self, ctx, index: int, phase: str):
        engine = self.engine
        sync = self._sync[(phase, index)]
        chunk = self._chunk_matrix(ctx, index).T
        for i in range(engine.features.chunks_for(index)):
            yield AllOf(ctx.env, sync.chunk_computed[i])
            start = ctx.env.now
            yield all_to_all(
                ctx.fabric, chunk,
                hierarchical=engine.features.hierarchical_a2a,
            )
            ctx.trace.record(
                "comm.a2a", start, ctx.env.now,
                block=index, detail=f"{phase}-combine:{i}",
            )
        sync.combine_done.succeed()

    # -- task-graph builders ---------------------------------------------------

    def _chunk_compute_body(self, ctx, rank: int, index: int, phase: str,
                            chunk: int):
        """One chunk of :meth:`run_block`'s compute loop as a task body."""
        engine = self.engine

        def body():
            workload = engine.workload
            block = workload.blocks[index]
            placement = ctx.placements[index]
            gpu_flops = engine._rank_flops(rank)
            mult = _BACKWARD if phase == "bwd" else 1.0
            chunks = engine.features.chunks_for(index)
            received = sum(
                int(block.routing[:, expert].sum())
                for expert in placement.experts_of(rank)
            )
            overhead = (
                engine.cluster.spec.gpu.kernel_overhead
                * placement.experts_per_worker
            )
            seconds = engine._jittered(
                (received / chunks * workload.expert_flops / gpu_flops
                 + overhead) * mult
            )
            start = ctx.env.now
            yield ctx.env.process(
                ctx.fabric.compute(ctx.gpu_of[rank], seconds)
            )
            if rank == engine.trace_worker:
                ctx.trace.record(
                    "compute.expert", start, ctx.env.now,
                    worker=rank, block=index,
                    detail=f"{phase}:pec:{chunk}",
                )

        return body

    def _chunk_a2a_body(self, ctx, index: int, phase: str, chunk: int,
                        combine: bool):
        engine = self.engine

        def body():
            matrix = self._chunk_matrix(ctx, index)
            if combine:
                matrix = matrix.T
            start = ctx.env.now
            yield all_to_all(
                ctx.fabric, matrix,
                hierarchical=engine.features.hierarchical_a2a,
            )
            side = "combine" if combine else "dispatch"
            ctx.trace.record(
                "comm.a2a", start, ctx.env.now,
                block=index, detail=f"{phase}-{side}:{chunk}",
            )

        return body

    def worker_tasks(self, ctx, rank: int, index: int, phase: str):
        p = f"{self.name}.{phase}.b{index}"
        chunks = self.engine.features.chunks_for(index)
        tasks = [Task(
            f"{p}.w{rank}.arrive", TaskKind.GATE,
            signals=(f"{p}.arrive.{rank}",),
            worker=rank, block=index, phase=phase, traced=False,
        )]
        for chunk in range(chunks):
            tasks.append(Task(
                f"{p}.w{rank}.compute.{chunk}", TaskKind.EXPERT_COMPUTE,
                waits=(f"{p}.dispatched.{chunk}",),
                signals=(f"{p}.computed.{chunk}.{rank}",),
                body=self._chunk_compute_body(ctx, rank, index, phase, chunk),
                claims=gpu_claim(rank),
                worker=rank, block=index, phase=phase,
                detail=f"{phase}:pec:{chunk}",
            ))
        tasks.append(Task(
            f"{p}.w{rank}.leave", TaskKind.GATE,
            waits=(f"{p}.combined",),
            worker=rank, block=index, phase=phase, traced=False,
        ))
        return tasks

    def service_lanes(self, ctx, graph, forward_only: bool):
        lanes = []
        engine = self.engine
        world = engine.workload.world_size
        phases = ("fwd",) if forward_only else ("fwd", "bwd")
        for index in self.blocks:
            chunks = engine.features.chunks_for(index)
            for phase in phases:
                p = f"{self.name}.{phase}.b{index}"
                dispatcher = graph.lane(f"{p}.dispatcher", role="service")
                for chunk in range(chunks):
                    # Only the first chunk waits for the rendezvous; the
                    # rest follow back-to-back in lane order.
                    waits = (
                        tuple(f"{p}.arrive.{r}" for r in range(world))
                        if chunk == 0 else ()
                    )
                    dispatcher.add(Task(
                        f"{p}.a2a-dispatch.{chunk}", TaskKind.A2A_CHUNK,
                        waits=waits,
                        signals=(f"{p}.dispatched.{chunk}",),
                        body=self._chunk_a2a_body(
                            ctx, index, phase, chunk, combine=False
                        ),
                        block=index, phase=phase,
                        detail=f"{phase}-dispatch:{chunk}",
                    ))
                combiner = graph.lane(f"{p}.combiner", role="service")
                for chunk in range(chunks):
                    combiner.add(Task(
                        f"{p}.a2a-combine.{chunk}", TaskKind.A2A_CHUNK,
                        waits=tuple(
                            f"{p}.computed.{chunk}.{r}" for r in range(world)
                        ),
                        signals=(
                            (f"{p}.combined",) if chunk == chunks - 1 else ()
                        ),
                        body=self._chunk_a2a_body(
                            ctx, index, phase, chunk, combine=True
                        ),
                        block=index, phase=phase,
                        detail=f"{phase}-combine:{chunk}",
                    ))
                lanes.extend((dispatcher, combiner))
        return lanes

    @classmethod
    def memory_terms(
        cls, config, num_blocks: int, credit_size: int, pipeline_chunks: int,
    ) -> Tuple[float, ...]:
        """Chunking shrinks the transient dispatch/combine working buffers
        to 1/K of the token payload; the copies autograd retains for the
        backward stay full-sized."""
        routed = config.tokens_per_worker * config.token_bytes
        slack = (EC_A2A_SLACK - 2.0) + 2.0 / pipeline_chunks
        return (slack * 2.0 * routed * num_blocks,)
