"""Shared per-iteration state for the timed Janus engine.

One :class:`IterationContext` is created per simulated training iteration.
It owns the synchronization events that tie workers, intra-node schedulers
and inter-node schedulers together, and the per-worker credit buffers and
per-machine caches.  Expert readiness is tracked separately for the forward
sweep (phase ``"fwd"``) and the backward sweep (phase ``"bwd"``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Tuple

from ..cluster import Device
from ..netsim import Fabric
from ..runtime.layout import ExpertPlacement
from ..simkit import Container, Environment, Event, Store
from ..trace import TraceRecorder
from .workload import IterationWorkload

__all__ = ["JanusFeatures", "IterationContext", "PHASES"]

PHASES = ("fwd", "bwd")


@dataclass(frozen=True)
class JanusFeatures:
    """Feature flags for the data-centric engine (the §7.2 ablation axes).

    ``topology_aware`` enables Algorithm 1's staggered intra-node order and
    the PCIe-switch peer scheduling; ``prefetch`` starts expert pulls at
    iteration start instead of at MoE-block entry (§5.3); ``hierarchical``
    enables the per-machine cache + gradient pre-reduction (§5.1.2) —
    disabling it makes every worker pull remote experts itself (an extra
    ablation beyond the paper's).  ``credit_size`` is C of §5.1.1.
    """

    topology_aware: bool = True
    prefetch: bool = True
    hierarchical: bool = True
    credit_size: int = 16
    # Expert-centric blocks: Tutel-style hierarchical All-to-All (per
    # machine-pair aggregation striped over NICs) vs the naive flat
    # per-GPU-pair decomposition.
    hierarchical_a2a: bool = True
    # Pipelined expert-centric blocks: number of token chunks the dispatch
    # and combine All-to-Alls are split into, so expert compute on chunk i
    # overlaps the All-to-All of chunk i+1 (Parm/FlowMoE-style).
    ec_pipeline_chunks: int = 4
    # Task-graph scheduler: number of micro-batches M a micro-capable
    # strategy splits the global batch into (pipeline-parallel interleaving
    # of the per-block DAGs).  Inert unless a micro-capable strategy (e.g.
    # ``microbatch-ec``) is selected, so the default changes nothing.
    micro_batches: int = 4
    # Per-block chunk-count overrides for the chunked expert-centric
    # strategies (FSMoE-style cost-modelled chunk sizing): block index ->
    # chunk count.  Accepts a mapping at construction; normalized to a
    # sorted tuple of pairs so the dataclass stays hashable.  Blocks not
    # listed fall back to ``ec_pipeline_chunks``.  Empty = the legacy
    # single-M behaviour, bit-identical to pre-tuner builds.
    block_chunks: Tuple[Tuple[int, int], ...] = ()
    # Re-derive ``block_chunks`` (and ``micro_batches``) from the
    # iteration's measured routing via the control-plane cost model before
    # every iteration.  Off = never touch the fixed counts.
    chunk_autotune: bool = False
    # Intra-A2A chunk scheduling: "off" keeps the fluid model (concurrent
    # All-to-All chunks superpose, the fabric never arbitrates); "wave"
    # models the shared NIC fabric as an arbitrated resource with grants
    # in raw arrival order (the unscheduled baseline); "chain" arbitrates
    # the same fabric but staggers grants by schedule position, so a
    # congested NIC always serves the chunk feeding the critical path.
    a2a_stagger: str = "off"
    # Backward dense-gradient all-reduce scheduling: "none" (not modelled,
    # the legacy behaviour), "serial" (one all-reduce sweep after every
    # worker finishes its backward), or "overlap" (per-block all-reduces
    # launched as soon as that block's backward dense compute retires,
    # filling idle link time behind later backward blocks).
    grad_allreduce: str = "none"

    def __post_init__(self):
        if self.credit_size <= 0:
            raise ValueError("credit_size must be positive")
        if self.ec_pipeline_chunks <= 0:
            raise ValueError("ec_pipeline_chunks must be positive")
        if self.micro_batches <= 0:
            raise ValueError("micro_batches must be positive")
        if self.grad_allreduce not in ("none", "serial", "overlap"):
            raise ValueError(
                "grad_allreduce must be 'none', 'serial' or 'overlap'"
            )
        if isinstance(self.block_chunks, Mapping):
            object.__setattr__(
                self, "block_chunks",
                tuple(sorted(self.block_chunks.items())),
            )
        else:
            object.__setattr__(
                self, "block_chunks", tuple(tuple(p) for p in self.block_chunks)
            )
        for block, chunks in self.block_chunks:
            if chunks <= 0:
                raise ValueError(
                    f"block_chunks[{block}] must be positive, got {chunks}"
                )
        if self.a2a_stagger not in ("off", "wave", "chain"):
            raise ValueError(
                "a2a_stagger must be 'off', 'wave' or 'chain'"
            )

    def chunks_for(self, block: int) -> int:
        """Chunk count for one block: the per-block override when the
        tuner (or a caller) set one, else the global fixed M."""
        for index, chunks in self.block_chunks:
            if index == block:
                return chunks
        return self.ec_pipeline_chunks

    @property
    def min_pipeline_chunks(self) -> int:
        """Smallest chunk count any block may run with — the conservative
        input to the memory model (fewer chunks = bigger transient
        dispatch/combine buffers)."""
        counts = [chunks for _, chunks in self.block_chunks]
        counts.append(self.ec_pipeline_chunks)
        return min(counts)


class IterationContext:
    """Events, buffers and caches for one simulated iteration."""

    def __init__(
        self,
        env: Environment,
        fabric: Fabric,
        workload: IterationWorkload,
        features: JanusFeatures,
        trace: TraceRecorder,
        dc_blocks=None,
        strategy_blocks=None,
        resilience=None,
        fault_stats=None,
        metrics=None,
        trace_worker=0,
        replicas=None,
    ):
        """``dc_blocks``: MoE block indices served by the Janus Task Queue
        (and thus need the schedulers).  Defaults to every MoE block.

        ``strategy_blocks``: optional mapping of block-strategy name to the
        MoE block indices that strategy executes (see
        :mod:`repro.core.strategies`).  When omitted it is derived from
        ``dc_blocks``: task-queue blocks run ``"data-centric"``, the rest
        ``"expert-centric"``.

        ``replicas``: control-plane expert replica map
        (``block -> expert -> machines holding a replica``).  A replicated
        expert serves a machine's cache from the (bounded-staleness) local
        copy at iteration start, so the fetch chains skip it; a background
        replica-sync transfer pays the refresh bytes.  Empty/None keeps
        every code path byte-for-byte identical to the pre-control engine."""
        self.env = env
        self.fabric = fabric
        self.workload = workload
        self.features = features
        self.trace = trace
        # Resilience: None keeps the happy-path scheduler code byte-for-byte
        # (timings bit-identical to a no-fault build); a
        # :class:`~repro.faults.ResilienceConfig` arms timeouts/retries.
        self.resilience = resilience
        self.fault_stats = fault_stats
        # Optional MetricsRegistry.  Instrumented sites guard on ``None``
        # and only ever perform pure Python increments, so attaching a
        # registry cannot change simulated timing.
        self.metrics = metrics
        # Rank whose per-expert activity lands on the trace's worker lanes.
        self.trace_worker = trace_worker
        # (machine, block, expert) cache keys already requested by some
        # worker: first request per key is a miss, the rest are dedup hits.
        self.cache_requested = set()
        # First fetch start per (machine, block): anchors the block deadline.
        self.block_fetch_began: Dict[Tuple[int, int], float] = {}
        layout = workload.layout
        self.layout = layout
        cluster = fabric.cluster

        self.gpu_of: Dict[int, Device] = {
            rank: cluster.gpu_device(rank) for rank in range(layout.world_size)
        }
        self.placements: Dict[int, ExpertPlacement] = {
            block.index: ExpertPlacement(block.num_experts, layout.world_size)
            for block in workload.blocks
            if block.is_moe
        }

        moe_indices = list(self.placements)
        self.dc_block_indices = sorted(
            moe_indices if dc_blocks is None else dc_blocks
        )
        if not set(self.dc_block_indices) <= set(moe_indices):
            raise ValueError("dc_blocks must be a subset of the MoE blocks")
        if strategy_blocks is None:
            strategy_blocks = {"data-centric": self.dc_block_indices}
            rest = sorted(set(moe_indices) - set(self.dc_block_indices))
            if rest:
                strategy_blocks["expert-centric"] = rest
        self.strategy_blocks = {
            name: tuple(sorted(set(blocks)))
            for name, blocks in strategy_blocks.items()
        }
        for name, blocks in self.strategy_blocks.items():
            if not set(blocks) <= set(moe_indices):
                raise ValueError(
                    f"strategy {name!r} blocks must be a subset of the "
                    "MoE blocks"
                )
        world = layout.world_size

        # Worker r entered block b in each phase: gates non-prefetch fetching.
        self.block_entry: Dict[Tuple[str, int, int], Event] = {
            (phase, b, r): env.event()
            for phase in PHASES
            for b in moe_indices
            for r in range(world)
        }
        # Expert e ready in worker r's GPU: (phase, block, rank, expert).
        self._ready_event: Dict[Tuple[str, int, int, int], Event] = {}
        # Per (phase, block, worker) store of arrived experts.
        self._ready_store: Dict[Tuple[str, int, int], Store] = {}
        # Expert e resident in machine M's CPU cache: (block, machine, e).
        self._cached_event: Dict[Tuple[int, int, int], Event] = {}
        # Events that must complete before the iteration ends (grad arrival).
        self.grad_delivered: List[Event] = []
        # Per-machine stores feeding the gradient pre-reduce collectors.
        self._grad_contrib: Dict[Tuple[int, int, int], Store] = {}

        self.credits: Dict[int, Container] = {
            rank: Container(
                env, capacity=features.credit_size, init=features.credit_size
            )
            for rank in range(world)
        }
        self.cache_fills: Dict[int, int] = {
            m: 0 for m in range(layout.num_machines)
        }
        self.replicas: Dict[int, Dict[int, Tuple[int, ...]]] = {
            block: dict(experts) for block, experts in (replicas or {}).items()
        }
        # Completed background replica-sync transfers per machine.
        self.replica_syncs: Dict[int, int] = {
            m: 0 for m in range(layout.num_machines)
        }
        # Processes the iteration must drain besides workers/collectors
        # (replica syncs); empty unless the control plane placed replicas.
        self.background_procs: List = []

        self.iteration_start = env.event()
        # Routing is fixed for the whole iteration, so the needed_* helpers
        # are pure in (block, rank); memoize them — they sit on the pull
        # scheduling hot path.  Callers only iterate the lists.
        self._routing_cache: Dict[Tuple[str, int, int], List[int]] = {}

    # -- strategy helpers ------------------------------------------------------

    def blocks_of(self, strategy_name: str) -> Tuple[int, ...]:
        """MoE block indices executed by ``strategy_name`` (ascending)."""
        return self.strategy_blocks.get(strategy_name, ())

    # -- routing helpers -------------------------------------------------------

    def needed_experts(self, block_index: int, rank: int) -> List[int]:
        """Non-resident experts worker ``rank`` must obtain for the block."""
        key = ("need", block_index, rank)
        cached = self._routing_cache.get(key)
        if cached is None:
            block = self.workload.blocks[block_index]
            placement = self.placements[block_index]
            routing = block.routing[rank]
            cached = [
                expert
                for expert in range(block.num_experts)
                if routing[expert] > 0 and placement.owner(expert) != rank
            ]
            self._routing_cache[key] = cached
        return cached

    def needed_internal(self, block_index: int, rank: int) -> List[int]:
        key = ("int", block_index, rank)
        cached = self._routing_cache.get(key)
        if cached is None:
            placement = self.placements[block_index]
            machine = self.layout.machine_of(rank)
            cached = [
                expert
                for expert in self.needed_experts(block_index, rank)
                if self.layout.machine_of(placement.owner(expert)) == machine
            ]
            self._routing_cache[key] = cached
        return cached

    def needed_external(self, block_index: int, rank: int) -> List[int]:
        key = ("ext", block_index, rank)
        cached = self._routing_cache.get(key)
        if cached is None:
            placement = self.placements[block_index]
            machine = self.layout.machine_of(rank)
            cached = [
                expert
                for expert in self.needed_experts(block_index, rank)
                if self.layout.machine_of(placement.owner(expert)) != machine
            ]
            self._routing_cache[key] = cached
        return cached

    def own_experts_with_tokens(self, block_index: int, rank: int) -> List[int]:
        block = self.workload.blocks[block_index]
        placement = self.placements[block_index]
        return [
            expert
            for expert in placement.experts_of(rank)
            if block.routing[rank][expert] > 0
        ]

    def machine_external_experts(self, block_index: int, machine: int) -> List[int]:
        """External experts any worker of ``machine`` needs, ascending."""
        needed = set()
        for rank in self.layout.ranks_of_machine(machine):
            needed.update(self.needed_external(block_index, rank))
        return sorted(needed)

    def replicated_on(self, block_index: int, expert: int, machine: int) -> bool:
        """Whether ``machine`` holds a control-plane replica of the expert."""
        by_block = self.replicas.get(block_index)
        if not by_block:
            return False
        return machine in by_block.get(expert, ())

    # -- event registries -----------------------------------------------------------

    def ready_event(self, phase: str, block: int, rank: int, expert: int) -> Event:
        key = (phase, block, rank, expert)
        if key not in self._ready_event:
            self._ready_event[key] = self.env.event()
        return self._ready_event[key]

    def ready_store(self, phase: str, block: int, rank: int) -> Store:
        key = (phase, block, rank)
        if key not in self._ready_store:
            self._ready_store[key] = Store(self.env)
        return self._ready_store[key]

    def cached_event(self, block: int, machine: int, expert: int) -> Event:
        key = (block, machine, expert)
        if key not in self._cached_event:
            self._cached_event[key] = self.env.event()
        return self._cached_event[key]

    def grad_contrib_store(self, block: int, machine: int, expert: int) -> Store:
        key = (block, machine, expert)
        if key not in self._grad_contrib:
            self._grad_contrib[key] = Store(self.env)
        return self._grad_contrib[key]

    def mark_ready(self, phase: str, block: int, rank: int, expert: int) -> None:
        event = self.ready_event(phase, block, rank, expert)
        if not event.triggered:
            event.succeed()
        self.ready_store(phase, block, rank).put(expert)
        if phase == "fwd":
            self.trace.mark(
                "expert_ready",
                self.env.now,
                worker=rank,
                block=block,
                expert=expert,
            )

    def fetch_start_event(self, phase: str, block: int, rank: int) -> Event:
        """When worker ``rank``'s fetching for ``block`` may begin."""
        if phase == "fwd" and self.features.prefetch:
            return self.iteration_start
        return self.block_entry[(phase, block, rank)]
