"""Paradigm selection: the communication-volume analysis of §5.1.3.

Implements the paper's closed forms for per-machine cross-node traffic of an
MoE block's forward phase:

* data-centric:    ``Comm_DC = 8 H^2 * E * m * (n-1)`` elements
  (each machine broadcasts its ``E*m`` experts of ``8H^2`` parameters to the
  other ``n-1`` machines),
* expert-centric:  ``Comm_EC = 2 m H T * (n-1)/n`` elements
  (two All-to-Alls over the ``T = B*S*k`` tokens per worker, balanced
  routing as the paper's lower-bound assumption),

and the gain ratio ``R = Comm_EC / Comm_DC = B*S*k / (4*n*H*E)`` (Eq. 1).
``R > 1`` selects the data-centric paradigm for a block; ``R <= 1`` keeps
the expert-centric All-to-All (§5.1.3 "Discussion" and §7.5).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from ..config import ModelConfig

__all__ = [
    "Paradigm",
    "BlockCommProfile",
    "comm_data_centric",
    "comm_expert_centric",
    "gain_ratio",
    "select_paradigm",
    "profile_block",
    "profile_model",
]


class Paradigm(Enum):
    """Which communication paradigm executes one MoE block.

    Values double as block-strategy registry names (see
    :mod:`repro.core.strategies`); the engine resolves execution through
    that registry, so strategies beyond this enum can be plugged in.  The
    §5.1.3 communication analysis below only distinguishes the two
    paradigm *families*: pipelined expert-centric moves exactly the
    expert-centric byte volume, just scheduled in overlapping chunks.
    """

    EXPERT_CENTRIC = "expert-centric"
    DATA_CENTRIC = "data-centric"
    PIPELINED_EXPERT_CENTRIC = "pipelined-ec"


def comm_data_centric(
    hidden_dim: int,
    experts_per_worker: int,
    workers_per_machine: int,
    num_machines: int,
    dtype_bytes: int = 4,
) -> float:
    """Per-machine cross-node bytes, forward phase, data-centric (§5.1.3)."""
    _check_cluster(num_machines, workers_per_machine)
    if experts_per_worker <= 0:
        raise ValueError("experts_per_worker must be positive")
    elements = (
        8
        * hidden_dim**2
        * experts_per_worker
        * workers_per_machine
        * (num_machines - 1)
    )
    return float(elements) * dtype_bytes


def comm_expert_centric(
    hidden_dim: int,
    tokens_per_worker: int,
    workers_per_machine: int,
    num_machines: int,
    dtype_bytes: int = 4,
) -> float:
    """Per-machine cross-node bytes, forward phase, expert-centric (§5.1.3).

    Balanced-routing lower bound: two All-to-Alls, each shipping the
    ``(n-1)/n`` fraction of the machine's ``m*T`` tokens off-machine.
    """
    _check_cluster(num_machines, workers_per_machine)
    if tokens_per_worker <= 0:
        raise ValueError("tokens_per_worker must be positive")
    elements = (
        2
        * workers_per_machine
        * hidden_dim
        * tokens_per_worker
        * (num_machines - 1)
        / num_machines
    )
    return float(elements) * dtype_bytes


def gain_ratio(
    batch_size: int,
    seq_len: int,
    top_k: int,
    num_machines: int,
    hidden_dim: int,
    experts_per_worker: int,
) -> float:
    """Eq. 1: ``R = B*S*k / (4*n*H*E)``."""
    if min(batch_size, seq_len, top_k, num_machines, hidden_dim,
           experts_per_worker) <= 0:
        raise ValueError("all gain-ratio inputs must be positive")
    return (batch_size * seq_len * top_k) / (
        4.0 * num_machines * hidden_dim * experts_per_worker
    )


def select_paradigm(ratio: float, threshold: float = 1.0) -> Paradigm:
    """The paper's rule: data-centric iff R > threshold.

    The default threshold is 1 (Eq. 1's break-even).  §7.5 raises it
    conservatively when deployment measurements show the data-centric
    implementation cannot reach the analytic bound (e.g. the PCIe link
    between switch and CPU capping cache-fill bandwidth), which is how the
    paper decides to run PR-MoE's deep E=4 blocks expert-centric.
    """
    if threshold <= 0:
        raise ValueError("threshold must be positive")
    return (
        Paradigm.DATA_CENTRIC if ratio > threshold else Paradigm.EXPERT_CENTRIC
    )


@dataclass(frozen=True)
class BlockCommProfile:
    """Communication analysis of one MoE block on a given cluster."""

    block_index: int
    num_experts: int
    experts_per_worker: int
    ratio: float
    paradigm: Paradigm
    expert_centric_bytes: float
    data_centric_bytes: float

    @property
    def traffic_reduction(self) -> float:
        """How much less cross-node traffic the chosen paradigm moves."""
        if self.paradigm is Paradigm.DATA_CENTRIC:
            return self.expert_centric_bytes / self.data_centric_bytes
        return 1.0


def profile_block(
    config: ModelConfig,
    block_index: int,
    num_machines: int,
    workers_per_machine: int,
) -> BlockCommProfile:
    """Analyze one MoE block: traffic under both paradigms, R, and choice."""
    world_size = num_machines * workers_per_machine
    experts_per_worker = config.experts_per_worker(block_index, world_size)
    ratio = gain_ratio(
        config.batch_size,
        config.seq_len,
        config.top_k,
        num_machines,
        config.hidden_dim,
        experts_per_worker,
    )
    return BlockCommProfile(
        block_index=block_index,
        num_experts=config.num_experts(block_index),
        experts_per_worker=experts_per_worker,
        ratio=ratio,
        paradigm=select_paradigm(ratio),
        expert_centric_bytes=comm_expert_centric(
            config.hidden_dim,
            config.tokens_per_worker,
            workers_per_machine,
            num_machines,
            config.dtype_bytes,
        ),
        data_centric_bytes=comm_data_centric(
            config.hidden_dim,
            experts_per_worker,
            workers_per_machine,
            num_machines,
            config.dtype_bytes,
        ),
    )


def profile_model(
    config: ModelConfig, num_machines: int, workers_per_machine: int
):
    """Profiles for every MoE block of the model, in block order."""
    return [
        profile_block(config, index, num_machines, workers_per_machine)
        for index in config.moe_block_indices
    ]


def _check_cluster(num_machines: int, workers_per_machine: int) -> None:
    if num_machines < 2:
        raise ValueError("cross-node analysis needs at least 2 machines")
    if workers_per_machine <= 0:
        raise ValueError("workers_per_machine must be positive")
