"""Tensor-parallel expert sharding analysis (paper §9 discussion).

The paper notes that very large MoE models also use tensor parallelism
(Megatron-style): each expert's two weight matrices are column/row split
over a TP group of ``tp_degree`` GPUs, and Janus "also supports tensor
parallelism".  This module extends the §5.1.3 communication analysis to
that regime:

* **data-centric + TP**: each TP rank pulls only its 1/tp shard of every
  expert, so a single pull shrinks by ``tp_degree`` while the group
  collectively still moves one full expert — aggregate Comm_DC is
  unchanged;
* **expert-centric + TP**: each token reaches its expert's TP group once
  and is shared inside the group, so aggregate Comm_EC is also unchanged;
* folding world/tp expert-parallel groups over the same experts raises E
  per group by ``tp_degree``, and the two effects cancel exactly:
  ``R_tp = tp_degree * R(E * tp) = R(E)`` — **tensor parallelism does not
  change the paradigm choice**, it only makes data-centric pulls finer
  grained (better overlap, smaller buffers).

These closed forms back a planner for TP deployments; the timed engines
stay at TP=1 (the paper's evaluation setting).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import ModelConfig
from .paradigm import Paradigm, gain_ratio, select_paradigm

__all__ = ["TensorParallelPlan", "plan_tensor_parallel"]


@dataclass(frozen=True)
class TensorParallelPlan:
    """Communication analysis of one MoE block under tensor parallelism."""

    block_index: int
    tp_degree: int
    experts_per_group: int          # E: experts owned by one TP group
    shard_bytes: float              # one expert shard (what a pull moves)
    base_ratio: float               # R at tp=1
    effective_ratio: float          # R_tp = tp * R
    paradigm: Paradigm


def plan_tensor_parallel(
    config: ModelConfig,
    block_index: int,
    num_machines: int,
    workers_per_machine: int,
    tp_degree: int,
    threshold: float = 1.0,
) -> TensorParallelPlan:
    """Plan one MoE block for a TP deployment.

    Expert-parallel groups are formed over ``world / tp_degree`` logical
    workers; each logical worker is a TP group of ``tp_degree`` GPUs.
    """
    if tp_degree <= 0:
        raise ValueError("tp_degree must be positive")
    world = num_machines * workers_per_machine
    if world % tp_degree != 0:
        raise ValueError(
            f"world size {world} not divisible by tp_degree {tp_degree}"
        )
    ep_world = world // tp_degree
    experts = config.num_experts(block_index)
    if experts % ep_world != 0:
        raise ValueError(
            f"{experts} experts cannot be split over {ep_world} "
            f"expert-parallel groups"
        )
    experts_per_group = experts // ep_world
    base = gain_ratio(
        config.batch_size,
        config.seq_len,
        config.top_k,
        num_machines,
        config.hidden_dim,
        experts_per_group,
    )
    effective = base * tp_degree
    return TensorParallelPlan(
        block_index=block_index,
        tp_degree=tp_degree,
        experts_per_group=experts_per_group,
        shard_bytes=config.expert_bytes / tp_degree,
        base_ratio=base,
        effective_ratio=effective,
        paradigm=select_paradigm(effective, threshold=threshold),
    )
