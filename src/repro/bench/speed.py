"""Wall-clock timing of the Fig. 14 simulation configs.

``time_config`` runs one (model, paradigm) combination ``runs`` times and
reports the median seconds per simulated iteration plus kernel events per
host-second.  ``run_suite`` times a list of configs — fanning the
independent configs out across a :class:`ProcessPoolExecutor` when more
than one worker is available — and assembles the machine-readable capture
that ``repro bench --write`` commits to ``benchmarks/BENCH_speed.json``.

Wall-clock numbers are machine-dependent, so the snapshot also stores a
``calibration_s`` measurement: the time this host needs for a fixed
kernel-shaped workload (heap churn + small numpy ops).  ``check_snapshot``
rescales the committed medians by the calibration ratio before applying
the regression tolerance, which keeps the CI gate meaningful on runners
faster or slower than the machine that wrote the snapshot.
"""

from __future__ import annotations

import heapq
import statistics
import sys
import time
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path
from typing import Dict, List, NamedTuple, Optional, Sequence, Tuple

import numpy as np

SCHEMA = "janus-repro/bench-speed/v1"

# src/repro/bench/speed.py -> repo root / benchmarks / BENCH_speed.json
DEFAULT_SNAPSHOT_PATH = (
    Path(__file__).resolve().parents[3] / "benchmarks" / "BENCH_speed.json"
)

# Calibration scaling is clamped so a wildly mis-measured calibration can
# not silently absorb a real regression (or invent one).
_CALIBRATION_SCALE_BOUNDS = (0.2, 5.0)


class BenchConfig(NamedTuple):
    """One timed simulation configuration (a Fig. 14 comparison point)."""

    model: str
    mode: str
    experts: int = 32
    machines: int = 4

    @property
    def key(self) -> str:
        return f"{self.model}/{self.mode}"


_MODES = ("expert-centric", "data-centric", "pipelined-ec", "unified")
_MODELS = ("MoE-BERT", "MoE-GPT", "MoE-Transformer-xl")

FULL_CONFIGS: Tuple[BenchConfig, ...] = tuple(
    BenchConfig(model, mode) for model in _MODELS for mode in _MODES
)

# CI smoke subset: the headline model under the three paradigms the paper
# compares head-to-head.
QUICK_CONFIGS: Tuple[BenchConfig, ...] = tuple(
    BenchConfig("MoE-GPT", mode)
    for mode in ("expert-centric", "data-centric", "unified")
)


def _model_config(spec: BenchConfig):
    from ..config import moe_bert, moe_gpt, moe_transformer_xl

    factories = {
        "MoE-BERT": moe_bert,
        "MoE-GPT": moe_gpt,
        "MoE-Transformer-xl": moe_transformer_xl,
    }
    return factories[spec.model](spec.experts)


def time_config(spec: BenchConfig, runs: int = 3) -> Dict:
    """Time ``runs`` cold iterations of one config; report the median.

    Engine and workload construction happen outside the timed region: the
    number is seconds per :meth:`JanusEngine.run_iteration` (one fresh
    :class:`Environment` per run), i.e. the simulation loop itself.
    """
    from ..cluster import Cluster
    from ..core import JanusFeatures, build_workload, engine_for

    config = _model_config(spec)
    cluster = Cluster(spec.machines)
    workload = build_workload(config, cluster)
    features = JanusFeatures(topology_aware=True, prefetch=True)
    samples: List[float] = []
    events = 0
    sim_seconds = 0.0
    for _ in range(runs):
        engine = engine_for(
            spec.mode, config, cluster, workload=workload, features=features
        )
        start = time.perf_counter()
        result = engine.run_iteration()
        samples.append(time.perf_counter() - start)
        events = result.sim_events
        sim_seconds = result.seconds
    median = statistics.median(samples)
    return {
        "median_s": median,
        "best_s": min(samples),
        "samples": [round(sample, 6) for sample in samples],
        "sim_seconds": sim_seconds,
        "events": events,
        "events_per_s": events / median if median > 0 else 0.0,
    }


def _timed_job(job: Tuple[BenchConfig, int]) -> Tuple[str, Dict]:
    spec, runs = job
    return spec.key, time_config(spec, runs=runs)


def _calibration_workload() -> float:
    """Fixed kernel-shaped work: heap churn plus small numpy passes."""
    heap: list = []
    for i in range(20000):
        heapq.heappush(heap, ((i * 2654435761) & 0xFFFF, i))
    while heap:
        heapq.heappop(heap)
    acc = 0.0
    values = np.arange(2048, dtype=float)
    for _ in range(200):
        values = values * 1.0000001
        acc += float(values[:512].sum())
    return acc


def calibrate(repeat: int = 3) -> float:
    """Best-of-``repeat`` wall time of the calibration workload."""
    best = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        _calibration_workload()
        best = min(best, time.perf_counter() - start)
    return best


def run_suite(
    configs: Sequence[BenchConfig] = FULL_CONFIGS,
    runs: int = 3,
    jobs: int = 1,
    calibration: Optional[float] = None,
) -> Dict:
    """Time every config and assemble the bench-speed capture.

    ``jobs > 1`` fans the independent configs out across a process pool;
    the ``parallel`` section then reports the multi-config scaling (sum of
    per-worker sample times over elapsed wall time).  With ``jobs == 1``
    everything runs inline in this process.
    """
    jobs = max(1, min(int(jobs), len(configs)))
    suite_start = time.perf_counter()
    if jobs > 1:
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            results = dict(
                pool.map(_timed_job, [(spec, runs) for spec in configs])
            )
    else:
        results = dict(_timed_job((spec, runs)) for spec in configs)
    wall_s = time.perf_counter() - suite_start
    # Keep the run ordering stable regardless of pool completion order.
    runs_section = {spec.key: results[spec.key] for spec in configs}
    serial_s = sum(
        sum(entry["samples"]) for entry in runs_section.values()
    )
    return {
        "schema": SCHEMA,
        "config": {
            "experts": configs[0].experts if configs else 0,
            "machines": configs[0].machines if configs else 0,
            "features": "full",
            "runs": runs,
        },
        "calibration_s": calibrate() if calibration is None else calibration,
        "host": {
            "python": sys.version.split()[0],
            "numpy": np.__version__,
            "cpus": _cpu_count(),
        },
        "runs": runs_section,
        "parallel": {
            "jobs": jobs,
            "sum_of_samples_s": serial_s,
            "wall_s": wall_s,
            "speedup": serial_s / wall_s if wall_s > 0 else 0.0,
        },
    }


def _cpu_count() -> int:
    import os

    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def check_snapshot(
    current: Dict, snapshot: Dict, tolerance: float = 0.25
) -> List[str]:
    """Regression check: fresh medians vs the committed snapshot.

    The committed medians are rescaled by the calibration ratio (current
    host speed over snapshot host speed, clamped) so the gate compares
    simulator efficiency rather than raw machine speed.  Returns the list
    of violations (empty = pass).  Configs the current capture did not run
    (``--quick``) are skipped.
    """
    problems = []
    snap_runs = snapshot.get("runs", {})
    cur_runs = current.get("runs", {})
    scale = 1.0
    snap_cal = snapshot.get("calibration_s")
    cur_cal = current.get("calibration_s")
    if snap_cal and cur_cal:
        low, high = _CALIBRATION_SCALE_BOUNDS
        scale = min(max(cur_cal / snap_cal, low), high)
    for key in sorted(cur_runs):
        if key not in snap_runs:
            problems.append(f"{key}: not in committed snapshot (run --write)")
            continue
        expected = snap_runs[key]["median_s"] * scale
        actual = cur_runs[key]["median_s"]
        if actual > expected * (1.0 + tolerance):
            problems.append(
                f"{key}: median {actual * 1e3:.1f} ms/run vs allowed "
                f"{expected * (1.0 + tolerance) * 1e3:.1f} ms/run "
                f"(snapshot {snap_runs[key]['median_s'] * 1e3:.1f} ms "
                f"x calibration {scale:.2f} x band {1.0 + tolerance:.2f})"
            )
    return problems


def write_snapshot(path: Path, current: Dict) -> Dict:
    """Write ``current`` to ``path``, preserving any existing history.

    The ``history`` list is the wall-clock perf trajectory: each entry is
    a labelled prior capture (medians and events/sec only).  It is never
    rewritten by ``--write`` — append entries deliberately when a perf
    milestone lands.
    """
    import json

    history = []
    if path.exists():
        try:
            history = json.loads(path.read_text()).get("history", [])
        except (ValueError, OSError):
            history = []
    payload = dict(current)
    payload["history"] = history
    path.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
    return payload


def format_suite(current: Dict) -> str:
    """Human-readable table of a capture."""
    lines = []
    header = (
        f"{'config':<34} {'median ms/run':>14} {'best':>9} "
        f"{'events':>8} {'events/s':>11}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for key, entry in current.get("runs", {}).items():
        lines.append(
            f"{key:<34} {entry['median_s'] * 1e3:>14.1f} "
            f"{entry['best_s'] * 1e3:>9.1f} {entry['events']:>8d} "
            f"{entry['events_per_s']:>11.0f}"
        )
    parallel = current.get("parallel")
    if parallel:
        lines.append(
            f"parallel: {parallel['jobs']} worker(s), "
            f"{parallel['sum_of_samples_s']:.2f} s of runs in "
            f"{parallel['wall_s']:.2f} s wall "
            f"({parallel['speedup']:.2f}x scaling)"
        )
    lines.append(
        f"calibration: {current.get('calibration_s', 0.0) * 1e3:.1f} ms "
        f"(host {current.get('host', {}).get('cpus', '?')} cpu(s))"
    )
    return "\n".join(lines)
