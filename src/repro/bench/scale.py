"""Weak-scaling benchmark: fleet sizes from 8 to 128 machines.

The speed suite times the paper's Fig.-14 configs at a fixed 4-machine
cluster; this suite grows the *cluster* — MoE-GPT under the
expert-centric paradigm at 8, 16, 32, 64 and 128 machines (experts scale
with the fleet, 8 per machine) — and gates on two properties:

* **structure** (host-independent): wall microseconds per simulated
  event may grow at most ``MAX_PER_EVENT_GROWTH``x from the smallest to
  the largest fleet.  Event counts grow ~quadratically with machines
  (every machine pair exchanges All-to-All traffic), so per-event cost
  is the scale-invariant: any superlinear term in the solver, the event
  core or the flow tables shows up here before it shows up anywhere
  else;
* **wall clock** (calibration-rescaled like the speed suite): per-point
  medians vs the committed ``benchmarks/BENCH_scale.json``, plus an
  absolute budget — the 128-machine iteration must simulate in under
  ``TOP_ITERATION_BUDGET_S`` seconds after rescaling by the host
  calibration ratio.

The top point simulates two iterations back-to-back so the capture
exercises over a million events in one timed sample.  Points run
sequentially (never a process pool): they share nothing, but timing the
128-machine point next to four busy siblings would measure the pool,
not the simulator.
"""

from __future__ import annotations

import statistics
import sys
import time
from pathlib import Path
from typing import Dict, List, NamedTuple, Optional, Sequence, Tuple

import numpy as np

from .speed import _CALIBRATION_SCALE_BOUNDS, calibrate, _cpu_count

SCALE_SCHEMA = "janus-repro/bench-scale/v1"

# src/repro/bench/scale.py -> repo root / benchmarks / BENCH_scale.json
DEFAULT_SCALE_SNAPSHOT_PATH = (
    Path(__file__).resolve().parents[3] / "benchmarks" / "BENCH_scale.json"
)

# Structural gate: per-event wall cost from the smallest to the largest
# fleet in a capture.
MAX_PER_EVENT_GROWTH = 1.3

# Absolute budget for one simulated iteration at the largest fleet,
# rescaled by the calibration ratio when checking against a snapshot.
TOP_ITERATION_BUDGET_S = 10.0


class ScaleBenchConfig(NamedTuple):
    """One weak-scaling point."""

    machines: int
    model: str = "MoE-GPT"
    mode: str = "expert-centric"
    iterations: int = 1     # simulated iterations per timed sample
    runs: int = 1           # timed samples (median reported)

    @property
    def experts(self) -> int:
        return self.machines * 8    # one expert per GPU

    @property
    def key(self) -> str:
        return f"{self.model}/{self.mode}/{self.machines}m"


# Small points are cheap enough to sample three times (the median then
# shrugs off scheduler noise); the 128-machine point is long enough to be
# its own noise floor and doubles up iterations to cross 1M events.
SCALE_FULL_CONFIGS: Tuple[ScaleBenchConfig, ...] = (
    ScaleBenchConfig(machines=8, runs=3),
    ScaleBenchConfig(machines=16, runs=3),
    ScaleBenchConfig(machines=32, runs=2),
    ScaleBenchConfig(machines=64, runs=2),
    # Two samples: the first 128-machine run pays cold page faults for
    # gigabyte-scale flow tables; the best sample reflects steady state.
    ScaleBenchConfig(machines=128, iterations=2, runs=2),
)

# CI smoke subset: the scaling law needs two points to exist at all.
# Both are sub-second, so triple-sampling is cheap noise insurance.
SCALE_QUICK_CONFIGS: Tuple[ScaleBenchConfig, ...] = (
    ScaleBenchConfig(machines=8, runs=3),
    ScaleBenchConfig(machines=16, runs=3),
)


def time_scale_config(spec: ScaleBenchConfig, runs: int = 0) -> Dict:
    """Time one weak-scaling point; the median is seconds per iteration.

    Construction (cluster, workload, engine) stays outside the timed
    region.  Each run simulates ``spec.iterations`` fresh iterations on
    fresh engines and reports wall seconds per iteration, so samples are
    comparable across points regardless of their iteration multiplier.

    The cyclic garbage collector is paused inside the timed region (and
    restored after): generation-2 collections scan the whole live object
    graph, which at 128 machines is ~300k flow/event objects — a
    superlinear term that belongs to allocator policy, not to the
    simulator, and would drown the structural gate in noise.  This is
    the same discipline pytest-benchmark applies by default.
    """
    import gc

    from ..cluster import Cluster
    from ..config import moe_bert, moe_gpt, moe_transformer_xl
    from ..core import JanusFeatures, build_workload, engine_for

    factories = {
        "MoE-BERT": moe_bert,
        "MoE-GPT": moe_gpt,
        "MoE-Transformer-xl": moe_transformer_xl,
    }
    config = factories[spec.model](spec.experts)
    cluster = Cluster(spec.machines)
    workload = build_workload(config, cluster)
    features = JanusFeatures(topology_aware=True, prefetch=True)
    runs = runs or spec.runs
    samples: List[float] = []
    events_per_iter = 0
    sim_seconds = 0.0
    for _ in range(runs):
        engines = [
            engine_for(
                spec.mode, config, cluster,
                workload=workload, features=features,
            )
            for _ in range(spec.iterations)
        ]
        gc.collect()
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            start = time.perf_counter()
            for engine in engines:
                result = engine.run_iteration()
            elapsed = time.perf_counter() - start
        finally:
            if gc_was_enabled:
                gc.enable()
        samples.append(elapsed / spec.iterations)
        events_per_iter = result.sim_events
        sim_seconds = result.seconds
    median = statistics.median(samples)
    # The growth law divides two per-event costs, so it wants the
    # least-noise estimator: the best sample, not the median (which the
    # wall gate uses — a regression should shift the whole distribution,
    # while scheduler noise only pads it).
    per_event_us = (
        min(samples) / events_per_iter * 1e6 if events_per_iter else 0.0
    )
    return {
        "machines": spec.machines,
        "experts": spec.experts,
        "iterations": spec.iterations,
        "median_s": median,
        "best_s": min(samples),
        "samples": [round(sample, 6) for sample in samples],
        "sim_seconds": sim_seconds,
        "events": events_per_iter,
        "events_total": events_per_iter * spec.iterations,
        "per_event_us": per_event_us,
    }


def run_scale_suite(
    configs: Sequence[ScaleBenchConfig] = SCALE_FULL_CONFIGS,
    runs: int = 0,
    calibration: Optional[float] = None,
) -> Dict:
    """Run the weak-scaling sweep sequentially and assemble the capture.

    ``runs`` overrides every config's sample count when positive.  A
    throwaway 2-machine iteration runs first so no timed point pays
    first-use costs (imports, the compiled water-filling kernel, numpy
    warm-up).
    """
    time_scale_config(ScaleBenchConfig(machines=2), runs=1)  # warm-up
    suite_start = time.perf_counter()
    runs_section = {
        spec.key: time_scale_config(spec, runs=runs) for spec in configs
    }
    wall_s = time.perf_counter() - suite_start
    return {
        "schema": SCALE_SCHEMA,
        "config": {
            "model": configs[0].model if configs else "",
            "mode": configs[0].mode if configs else "",
            "machines": [spec.machines for spec in configs],
            "features": "topology_aware+prefetch",
        },
        "calibration_s": calibrate() if calibration is None else calibration,
        "host": {
            "python": sys.version.split()[0],
            "numpy": np.__version__,
            "cpus": _cpu_count(),
        },
        "runs": runs_section,
        "wall_s": wall_s,
    }


def _ordered_points(current: Dict) -> List[Dict]:
    return sorted(
        current.get("runs", {}).values(), key=lambda e: e["machines"]
    )


def check_scale_structure(
    current: Dict, max_growth: float = MAX_PER_EVENT_GROWTH
) -> List[str]:
    """Host-independent weak-scaling gate on one capture.

    Per-event wall cost from the smallest to the largest fleet must not
    grow beyond ``max_growth``; both endpoints come from the same
    capture on the same host, so no calibration is involved.

    The law only engages when the capture spans at least a 4x machine
    range: between adjacent fleet sizes the per-event delta is scheduler
    noise (sub-second points swing +-20% on a busy one-core runner), not
    scaling structure, and gating on it would make the quick CI subset
    flaky by construction.
    """
    points = _ordered_points(current)
    problems = []
    if len(points) < 2:
        problems.append(
            "scaling law needs at least two fleet sizes in the capture"
        )
        return problems
    first, last = points[0], points[-1]
    if last["machines"] < 4 * first["machines"]:
        return problems
    if first["per_event_us"] <= 0:
        problems.append("smallest point reported no events")
        return problems
    growth = last["per_event_us"] / first["per_event_us"]
    if growth > max_growth:
        problems.append(
            f"per-event cost grows {growth:.2f}x from "
            f"{first['machines']}m ({first['per_event_us']:.2f} us) to "
            f"{last['machines']}m ({last['per_event_us']:.2f} us); "
            f"allowed {max_growth:.2f}x"
        )
    return problems


def check_scale_snapshot(
    current: Dict, snapshot: Dict, tolerance: float = 0.25
) -> List[str]:
    """Regression gates: structure, per-point medians, top-point budget.

    Medians and the absolute iteration budget are rescaled by the
    calibration ratio (clamped) the way the speed suite does, so the
    gate survives faster or slower CI runners.
    """
    problems = check_scale_structure(current)
    snap_runs = snapshot.get("runs", {})
    cur_runs = current.get("runs", {})
    scale = 1.0
    snap_cal = snapshot.get("calibration_s")
    cur_cal = current.get("calibration_s")
    if snap_cal and cur_cal:
        low, high = _CALIBRATION_SCALE_BOUNDS
        scale = min(max(cur_cal / snap_cal, low), high)
    for key in sorted(cur_runs):
        if key not in snap_runs:
            problems.append(f"{key}: not in committed snapshot (run --write)")
            continue
        expected = snap_runs[key]["median_s"] * scale
        actual = cur_runs[key]["median_s"]
        if actual > expected * (1.0 + tolerance):
            problems.append(
                f"{key}: median {actual:.3f} s/iter vs allowed "
                f"{expected * (1.0 + tolerance):.3f} s/iter "
                f"(snapshot {snap_runs[key]['median_s']:.3f} s "
                f"x calibration {scale:.2f} x band {1.0 + tolerance:.2f})"
            )
    points = _ordered_points(current)
    if points:
        top = points[-1]
        budget = TOP_ITERATION_BUDGET_S * scale
        if top["median_s"] > budget:
            problems.append(
                f"{top['machines']}m iteration takes {top['median_s']:.2f} s"
                f" vs budget {budget:.2f} s "
                f"({TOP_ITERATION_BUDGET_S:.0f} s x calibration {scale:.2f})"
            )
    return problems


def format_scale_suite(current: Dict) -> str:
    """Human-readable weak-scaling table."""
    lines = []
    header = (
        f"{'machines':>8} {'experts':>8} {'s/iter':>9} {'events':>9} "
        f"{'us/event':>9} {'growth':>7}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    points = _ordered_points(current)
    base = points[0]["per_event_us"] if points else 0.0
    for entry in points:
        growth = entry["per_event_us"] / base if base > 0 else 0.0
        lines.append(
            f"{entry['machines']:>8d} {entry['experts']:>8d} "
            f"{entry['median_s']:>9.3f} {entry['events']:>9d} "
            f"{entry['per_event_us']:>9.2f} {growth:>6.2f}x"
        )
    lines.append(
        f"calibration: {current.get('calibration_s', 0.0) * 1e3:.1f} ms "
        f"(host {current.get('host', {}).get('cpus', '?')} cpu(s)); "
        f"suite wall {current.get('wall_s', 0.0):.1f} s"
    )
    return "\n".join(lines)
