"""Wall-clock benchmark harness for the simulation core.

Everything else in the repo measures *simulated* time; this package is the
one place that measures *host* time — how long the simulator itself takes
to run — so hot-path optimizations have a number to move and regressions
have a number to trip on.  The committed snapshot lives in
``benchmarks/BENCH_speed.json`` and carries a history list: the wall-clock
perf trajectory of the project.

Entry points: ``repro bench`` (CLI) and ``make bench`` / ``make
bench-check``.
"""

from .speed import (
    DEFAULT_SNAPSHOT_PATH,
    FULL_CONFIGS,
    QUICK_CONFIGS,
    SCHEMA,
    BenchConfig,
    calibrate,
    check_snapshot,
    format_suite,
    run_suite,
    time_config,
    write_snapshot,
)
from .schedules import (
    DEFAULT_SCHEDULES_SNAPSHOT_PATH,
    SCHEDULE_FULL_CONFIGS,
    SCHEDULE_QUICK_CONFIGS,
    SCHEDULES_SCHEMA,
    ScheduleBenchConfig,
    check_schedule_wins,
    check_schedules_snapshot,
    format_schedules_suite,
    run_schedules_suite,
    time_schedule_config,
)
from .control import (
    CONTROL_FULL_CONFIGS,
    CONTROL_QUICK_CONFIGS,
    CONTROL_SCHEMA,
    DEFAULT_CONTROL_SNAPSHOT_PATH,
    ControlBenchConfig,
    check_control_snapshot,
    check_control_wins,
    format_control_suite,
    run_control_suite,
    time_control_config,
)
from .serving import (
    DEFAULT_SERVING_SNAPSHOT_PATH,
    SERVING_FULL_CONFIGS,
    SERVING_QUICK_CONFIGS,
    SERVING_SCHEMA,
    ServingBenchConfig,
    check_serving_snapshot,
    check_serving_wins,
    format_serving_suite,
    run_serving_suite,
    time_serving_config,
)
from .runtime_speed import (
    DEFAULT_RUNTIME_SNAPSHOT_PATH,
    RUNTIME_FULL_CONFIGS,
    RUNTIME_QUICK_CONFIGS,
    RUNTIME_SCHEMA,
    RuntimeBenchConfig,
    format_runtime_suite,
    run_runtime_suite,
    time_runtime_config,
)

__all__ = [
    "BenchConfig",
    "CONTROL_FULL_CONFIGS",
    "CONTROL_QUICK_CONFIGS",
    "CONTROL_SCHEMA",
    "ControlBenchConfig",
    "DEFAULT_CONTROL_SNAPSHOT_PATH",
    "DEFAULT_RUNTIME_SNAPSHOT_PATH",
    "DEFAULT_SCHEDULES_SNAPSHOT_PATH",
    "DEFAULT_SERVING_SNAPSHOT_PATH",
    "DEFAULT_SNAPSHOT_PATH",
    "FULL_CONFIGS",
    "QUICK_CONFIGS",
    "RUNTIME_FULL_CONFIGS",
    "RUNTIME_QUICK_CONFIGS",
    "RUNTIME_SCHEMA",
    "RuntimeBenchConfig",
    "SCHEDULE_FULL_CONFIGS",
    "SCHEDULE_QUICK_CONFIGS",
    "SCHEDULES_SCHEMA",
    "SCHEMA",
    "SERVING_FULL_CONFIGS",
    "SERVING_QUICK_CONFIGS",
    "SERVING_SCHEMA",
    "ScheduleBenchConfig",
    "ServingBenchConfig",
    "calibrate",
    "check_control_snapshot",
    "check_control_wins",
    "check_schedule_wins",
    "check_schedules_snapshot",
    "check_serving_snapshot",
    "check_serving_wins",
    "check_snapshot",
    "format_control_suite",
    "format_runtime_suite",
    "format_schedules_suite",
    "format_serving_suite",
    "format_suite",
    "run_control_suite",
    "run_runtime_suite",
    "run_schedules_suite",
    "run_serving_suite",
    "run_suite",
    "time_config",
    "time_control_config",
    "time_runtime_config",
    "time_schedule_config",
    "time_serving_config",
    "write_snapshot",
]
