"""Benchmark of the request-level serving simulator (``--suite serving``).

Replays seeded open-loop traces through :mod:`repro.serving` on both
topologies and gates on two axes, mirroring the schedules/control suites:

* wall-clock medians against ``benchmarks/BENCH_serving.json`` with the
  same calibration rescaling as :mod:`repro.bench.speed`, and
* the **structural serving win**, a pure simulated-time fact: on the
  skewed-popularity trace the disaggregated prefill/decode topology must
  beat the unified topology's p99 per-output-token latency.  Unified
  workers interleave prefills between decode steps, so a decode token
  occasionally waits behind a whole prompt (head-of-line blocking);
  dedicated decoders with streamed multi-NIC KV transfer and hot-expert
  pinning keep that out of the tail.  This ordering holds on any host —
  a violation means the serving model regressed, not a slow runner.

Every run also re-checks completeness (all offered requests finished)
and, when the snapshot was captured under the same NumPy version,
bit-reproducibility of the per-request latency digest.
"""

from __future__ import annotations

import statistics
import sys
import time
from pathlib import Path
from typing import Dict, List, NamedTuple, Optional, Sequence, Tuple

import numpy as np

from .speed import calibrate, check_snapshot

SERVING_SCHEMA = "janus-repro/bench-serving/v1"

DEFAULT_SERVING_SNAPSHOT_PATH = (
    Path(__file__).resolve().parents[3]
    / "benchmarks"
    / "BENCH_serving.json"
)

# Cluster/model shape shared by every run: the bench-speed MoE-GPT shape
# on four machines — two prefillers + two decoders when disaggregated.
_EXPERTS = 32
_MACHINES = 4

# Seeded arrival traces (request count is filled per config).  The skewed
# trace is the canonical one: rate 3000/s saturates unified workers hard
# enough that prefill head-of-line blocking dominates the decode tail,
# and Zipf-1.2 popularity gives decode-side pinning real hits.
_TRACES: Dict[str, str] = {
    "skewed": (
        "poisson;rate=3000;seed=7;skew=1.2;prompt_mean=128;output_mean=32"
    ),
    "uniform": (
        "poisson;rate=3000;seed=11;prompt_mean=128;output_mean=32"
    ),
    "diurnal": (
        "diurnal;rate=2500;amplitude=0.8;period=4;seed=13;"
        "prompt_mean=128;output_mean=32;skew=1.2"
    ),
    "bursty": (
        "bursty;rate=2000;burst=4;duty=0.2;seed=17;"
        "prompt_mean=128;output_mean=32;skew=1.2"
    ),
}


class ServingBenchConfig(NamedTuple):
    """One timed serving run: a named trace on one topology."""

    trace: str
    topology: str
    requests: int

    @property
    def key(self) -> str:
        return f"{self.trace}/{self.topology}"


SERVING_FULL_CONFIGS: Tuple[ServingBenchConfig, ...] = (
    ServingBenchConfig("skewed", "unified", 50_000),
    ServingBenchConfig("skewed", "disaggregated", 50_000),
    ServingBenchConfig("uniform", "unified", 20_000),
    ServingBenchConfig("uniform", "disaggregated", 20_000),
    ServingBenchConfig("diurnal", "disaggregated", 20_000),
    ServingBenchConfig("bursty", "unified", 20_000),
)

# CI smoke subset: the structural pair on a smaller trace.
SERVING_QUICK_CONFIGS: Tuple[ServingBenchConfig, ...] = (
    ServingBenchConfig("skewed", "unified", 8_000),
    ServingBenchConfig("skewed", "disaggregated", 8_000),
)


def _build_run(spec: ServingBenchConfig):
    from ..cluster import Cluster
    from ..config import moe_gpt
    from ..serving import ServingConfig, TraceSpec, generate_trace

    trace_spec = TraceSpec.parse(
        f"{_TRACES[spec.trace]};requests={spec.requests}"
    )
    return (
        moe_gpt(_EXPERTS),
        Cluster(_MACHINES),
        generate_trace(trace_spec),
        ServingConfig(topology=spec.topology),
    )


def time_serving_config(spec: ServingBenchConfig, runs: int = 1) -> Dict:
    """Time ``runs`` cold serving runs of one config; report the median.

    Each run regenerates the trace and rebuilds the cluster/fabric, so
    the sample includes exactly what ``repro serve`` pays.  The simulated
    facts (latency percentiles, goodput, digest) are bit-identical across
    runs — the final run's summary is reported.
    """
    from ..serving import simulate_serving

    samples: List[float] = []
    summary: Dict = {}
    digest = ""
    completed = False
    for _ in range(runs):
        start = time.perf_counter()
        config, cluster, trace, serving = _build_run(spec)
        result = simulate_serving(config, cluster, trace, serving)
        samples.append(time.perf_counter() - start)
        summary = result.summary()
        digest = result.digest()
        # Unserved requests keep the -1.0 sentinel completion stamp.
        completed = bool((result.complete_s >= 0.0).all())
    median = statistics.median(samples)
    events = int(summary.get("sim_events", 0))
    return {
        "median_s": median,
        "best_s": min(samples),
        "samples": [round(sample, 6) for sample in samples],
        "events": events,
        "events_per_s": events / median if median > 0 else 0.0,
        "requests": summary.get("requests", 0),
        "completed_ok": completed,
        "makespan_s": summary.get("makespan_s", 0.0),
        "ttft_p50_ms": summary.get("ttft_p50_ms", 0.0),
        "ttft_p99_ms": summary.get("ttft_p99_ms", 0.0),
        "tpot_p50_ms": summary.get("tpot_p50_ms", 0.0),
        "tpot_p99_ms": summary.get("tpot_p99_ms", 0.0),
        "slo_attainment": summary.get("slo_attainment", 0.0),
        "goodput_rps": summary.get("goodput_rps", 0.0),
        "nic_gb": summary.get("nic_gb", 0.0),
        "paradigms": summary.get("paradigms", {}),
        "digest": digest,
    }


def run_serving_suite(
    configs: Sequence[ServingBenchConfig] = SERVING_FULL_CONFIGS,
    runs: int = 1,
    calibration: Optional[float] = None,
) -> Dict:
    """Time every serving config and assemble the capture."""
    return {
        "schema": SERVING_SCHEMA,
        "config": {
            "model": "MoE-GPT",
            "experts": _EXPERTS,
            "machines": _MACHINES,
            "traces": {
                spec.trace: f"{_TRACES[spec.trace]};requests={spec.requests}"
                for spec in configs
            },
            "runs": runs,
        },
        "calibration_s": calibrate() if calibration is None else calibration,
        "host": {
            "python": sys.version.split()[0],
            "numpy": np.__version__,
        },
        "runs": {
            spec.key: time_serving_config(spec, runs=runs)
            for spec in configs
        },
    }


def check_serving_wins(current: Dict) -> List[str]:
    """Structural gate, independent of host speed.

    * disaggregated p99 per-output-token latency beats unified on the
      skewed trace (the Janus-inference disaggregation claim), and
    * every run completed all offered requests.
    """
    problems = []
    runs = current.get("runs", {})
    for key, entry in runs.items():
        if not entry.get("completed_ok", False):
            problems.append(f"{key}: not every offered request completed")
    unified = runs.get("skewed/unified")
    disagg = runs.get("skewed/disaggregated")
    if unified is None or disagg is None:
        return problems + [
            "capture is missing the skewed unified/disaggregated pair"
        ]
    fast = disagg["tpot_p99_ms"]
    slow = unified["tpot_p99_ms"]
    if fast >= slow:
        problems.append(
            f"skewed/disaggregated: p99 TPOT {fast:.3f} ms does not beat "
            f"unified ({slow:.3f} ms)"
        )
    return problems


def check_serving_snapshot(
    current: Dict, snapshot: Dict, tolerance: float = 0.25
) -> List[str]:
    """Wall gate (calibration-rescaled) + structural win + digest pin.

    The per-request latency digest is compared only when the snapshot was
    captured under the same NumPy version: the arrival sampler leans on
    ``Generator`` distribution methods whose bit streams NumPy does not
    freeze across releases.
    """
    problems = check_serving_wins(current) + check_snapshot(
        current, snapshot, tolerance=tolerance
    )
    same_numpy = (
        current.get("host", {}).get("numpy")
        == snapshot.get("host", {}).get("numpy")
    )
    if not same_numpy:
        return problems
    snap_runs = snapshot.get("runs", {})
    for key, entry in current.get("runs", {}).items():
        pinned = snap_runs.get(key, {}).get("digest")
        # --quick replays shorter traces under the same keys; digests are
        # only comparable when the request counts match too.
        if entry.get("requests") != snap_runs.get(key, {}).get("requests"):
            continue
        if pinned and entry.get("digest") != pinned:
            problems.append(
                f"{key}: latency digest {entry.get('digest', '')[:12]} != "
                f"snapshot {pinned[:12]} (simulation no longer "
                "bit-reproducible)"
            )
    return problems


def format_serving_suite(current: Dict) -> str:
    """Human-readable table of a capture."""
    header = (
        f"{'config':<22} {'p99 TTFT':>9} {'p99 TPOT':>9} {'SLO':>6} "
        f"{'goodput':>8} {'wall s':>7} {'events/s':>9}"
    )
    lines = [header, "-" * len(header)]
    for key, entry in current.get("runs", {}).items():
        lines.append(
            f"{key:<22} "
            f"{entry['ttft_p99_ms']:>7.2f}ms "
            f"{entry['tpot_p99_ms']:>7.3f}ms "
            f"{entry['slo_attainment']:>6.1%} "
            f"{entry['goodput_rps']:>6.0f}/s "
            f"{entry['median_s']:>7.2f} "
            f"{entry['events_per_s']:>9.0f}"
        )
    lines.append(
        f"calibration: {current.get('calibration_s', 0.0) * 1e3:.1f} ms"
    )
    return "\n".join(lines)
