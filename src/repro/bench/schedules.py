"""Benchmark of the task-graph-only schedules (micro-batching, all-reduce).

Times the mixed-R MoE-GPT configuration — one 32-expert block where the
expert-centric family wins and one 256-expert block where data-centric
wins — under the schedules the task graph unlocked: plain expert-centric
(the baseline), micro-batched expert-centric, serial vs. overlapped
backward gradient all-reduce, and the schedule-aware ``auto`` engine.

Unlike the Fig. 14 speed suite, this capture gates on *two* axes:

* wall-clock medians against ``benchmarks/BENCH_schedules.json`` with the
  same calibration rescaling as :mod:`repro.bench.speed` (simulator
  efficiency, host-independent), and
* the **structural schedule wins**, which are pure simulated-time facts:
  micro-batching must beat plain expert-centric and the overlapped
  all-reduce must beat the serial one.  These hold on any host; a
  violation means a schedule regression, not a slow runner.
"""

from __future__ import annotations

import statistics
import sys
import time
from pathlib import Path
from typing import Dict, List, NamedTuple, Optional, Sequence, Tuple

import numpy as np

from .speed import calibrate, check_snapshot

SCHEDULES_SCHEMA = "janus-repro/bench-schedules/v1"

DEFAULT_SCHEDULES_SNAPSHOT_PATH = (
    Path(__file__).resolve().parents[3]
    / "benchmarks"
    / "BENCH_schedules.json"
)

# The mixed-R shape: moe_gpt(32) with block 10 widened to 256 experts.
_MIXED_EXPERTS = {6: 32, 10: 256}
_MACHINES = 4

# Alternative GPU specs for the chunk-sensitive configurations.  On the
# default A100 both mixed-R blocks are deeply comm-bound: the launch
# overhead hides entirely behind the serialized All-to-All chunks, so the
# chunk count barely moves simulated time and any M >= 2 ties.  "tight"
# models a compute-tight accelerator (quarter of the sustained FLOPS,
# 10x the per-kernel launch cost — an older part or one running
# fine-grained unfused experts), where compute and launch overhead sit on
# the critical path and per-block chunk choice genuinely matters: block 6
# (32 experts, 1/worker) wants many chunks, block 10 (256 experts,
# 8/worker) pays 8x the launch tax per extra chunk and wants few.
_GPU_SPECS = {
    "a100": None,
    "tight": {"flops": 45e12, "kernel_overhead": 480e-6},
}


class ScheduleBenchConfig(NamedTuple):
    """One timed schedule of the mixed-R model."""

    mode: str
    micro_batches: int = 1
    grad_allreduce: str = "none"
    # All-to-All chunking: a fixed count (JanusFeatures.ec_pipeline_chunks)
    # or "auto" for the cost-model chunk tuner; None keeps the default.
    chunks: Optional[object] = None
    # Intra-A2A chunk scheduling ("off", "wave", "chain").
    stagger: str = "off"
    # GPU spec name from _GPU_SPECS.
    gpu: str = "a100"

    @property
    def key(self) -> str:
        parts = [self.mode]
        if self.gpu != "a100":
            parts.append(self.gpu)
        if self.micro_batches > 1:
            parts.append(f"mb{self.micro_batches}")
        if self.chunks == "auto":
            parts.append("auto")
        elif self.chunks is not None:
            parts.append(f"c{self.chunks}")
        if self.grad_allreduce != "none":
            parts.append(f"ar-{self.grad_allreduce}")
        if self.stagger != "off":
            parts.append("stagger" if self.stagger == "chain" else
                         self.stagger)
        return "/".join(parts)


SCHEDULE_FULL_CONFIGS: Tuple[ScheduleBenchConfig, ...] = (
    ScheduleBenchConfig("expert-centric"),
    ScheduleBenchConfig("microbatch-ec", micro_batches=4),
    ScheduleBenchConfig("expert-centric", grad_allreduce="serial"),
    ScheduleBenchConfig("expert-centric", grad_allreduce="overlap"),
    ScheduleBenchConfig("auto", micro_batches=4),
    # Chunk autotuning: the tuner's per-block counts must beat every
    # fixed M on the compute-tight spec (and strictly beat at least one).
    ScheduleBenchConfig("pipelined-ec", chunks=1, gpu="tight"),
    ScheduleBenchConfig("pipelined-ec", chunks=2, gpu="tight"),
    ScheduleBenchConfig("pipelined-ec", chunks=4, gpu="tight"),
    ScheduleBenchConfig("pipelined-ec", chunks=8, gpu="tight"),
    ScheduleBenchConfig("pipelined-ec", chunks="auto", gpu="tight"),
    # Intra-A2A scheduling: arbitrated NIC fabric, unscheduled wave
    # launch vs. micro-round staggered grants.
    ScheduleBenchConfig("microbatch-ec", micro_batches=4, stagger="wave"),
    ScheduleBenchConfig("microbatch-ec", micro_batches=4, stagger="chain"),
)

# CI smoke subset: the headline structural wins plus their baselines —
# micro-batching vs. plain EC, tuned vs. best-fixed chunks, staggered
# vs. wave chunk sends.
SCHEDULE_QUICK_CONFIGS: Tuple[ScheduleBenchConfig, ...] = (
    ScheduleBenchConfig("expert-centric"),
    ScheduleBenchConfig("microbatch-ec", micro_batches=4),
    ScheduleBenchConfig("pipelined-ec", chunks=2, gpu="tight"),
    ScheduleBenchConfig("pipelined-ec", chunks="auto", gpu="tight"),
    ScheduleBenchConfig("microbatch-ec", micro_batches=4, stagger="wave"),
    ScheduleBenchConfig("microbatch-ec", micro_batches=4, stagger="chain"),
)


def _mixed_model():
    from ..config import moe_gpt

    return moe_gpt(32).scaled(experts_per_block=dict(_MIXED_EXPERTS))


def time_schedule_config(spec: ScheduleBenchConfig, runs: int = 2) -> Dict:
    """Time ``runs`` cold iterations of one schedule; report the median."""
    from ..cluster import Cluster
    from ..cluster.hardware import GpuSpec, MachineSpec
    from ..core import JanusFeatures, build_workload, engine_for

    config = _mixed_model()
    gpu_overrides = _GPU_SPECS[spec.gpu]
    machine = (
        MachineSpec(gpu=GpuSpec(**gpu_overrides))
        if gpu_overrides is not None
        else None
    )
    cluster = (
        Cluster(_MACHINES, spec=machine)
        if machine is not None
        else Cluster(_MACHINES)
    )
    workload = build_workload(config, cluster)
    feature_kwargs = {}
    if spec.chunks == "auto":
        feature_kwargs["chunk_autotune"] = True
    elif spec.chunks is not None:
        feature_kwargs["ec_pipeline_chunks"] = spec.chunks
    features = JanusFeatures(
        micro_batches=spec.micro_batches,
        grad_allreduce=spec.grad_allreduce,
        a2a_stagger=spec.stagger,
        **feature_kwargs,
    )
    samples: List[float] = []
    events = 0
    sim_seconds = 0.0
    for _ in range(runs):
        engine = engine_for(
            spec.mode, config, cluster, workload=workload,
            features=features, check_memory=False,
        )
        start = time.perf_counter()
        result = engine.run_iteration()
        samples.append(time.perf_counter() - start)
        events = result.sim_events
        sim_seconds = result.seconds
    median = statistics.median(samples)
    return {
        "median_s": median,
        "best_s": min(samples),
        "samples": [round(sample, 6) for sample in samples],
        "sim_seconds": sim_seconds,
        "events": events,
        "events_per_s": events / median if median > 0 else 0.0,
    }


def run_schedules_suite(
    configs: Sequence[ScheduleBenchConfig] = SCHEDULE_FULL_CONFIGS,
    runs: int = 2,
    calibration: Optional[float] = None,
) -> Dict:
    """Time every schedule config and assemble the capture."""
    return {
        "schema": SCHEDULES_SCHEMA,
        "config": {
            "model": "MoE-GPT",
            "experts_per_block": {
                str(block): count
                for block, count in sorted(_MIXED_EXPERTS.items())
            },
            "machines": _MACHINES,
            "runs": runs,
        },
        "calibration_s": calibrate() if calibration is None else calibration,
        "host": {
            "python": sys.version.split()[0],
            "numpy": np.__version__,
        },
        "runs": {
            spec.key: time_schedule_config(spec, runs=runs)
            for spec in configs
        },
    }


# (faster key, slower key) — simulated-time orderings the schedules must
# preserve on every host.  Pairs whose keys a capture did not run (the
# --quick subset) are skipped.
STRUCTURAL_WINS: Tuple[Tuple[str, str], ...] = (
    ("microbatch-ec/mb4", "expert-centric"),
    ("expert-centric/ar-overlap", "expert-centric/ar-serial"),
    ("auto/mb4", "expert-centric"),
    # Intra-A2A chunk scheduling: with the NIC fabric arbitrated, the
    # micro-round stagger must beat the unscheduled wave launch.
    ("microbatch-ec/mb4/stagger", "microbatch-ec/mb4/wave"),
)

# Chunk-autotune gate: the tuned run must be no slower than *every* fixed
# chunk count captured for the same schedule/spec, and strictly faster
# than at least one of them (else the tuner is dead weight).
AUTOTUNE_WIN: Tuple[str, str] = ("pipelined-ec/tight/auto",
                                 "pipelined-ec/tight/c")


def check_autotune_win(current: Dict) -> List[str]:
    """The cost-model-tuned chunks must dominate the fixed-M sweep."""
    runs = current.get("runs", {})
    auto_key, fixed_prefix = AUTOTUNE_WIN
    if auto_key not in runs:
        return []
    fixed = {
        key: entry["sim_seconds"]
        for key, entry in runs.items()
        if key.startswith(fixed_prefix)
    }
    if not fixed:
        return []
    auto = runs[auto_key]["sim_seconds"]
    problems = []
    for key, seconds in sorted(fixed.items()):
        if auto > seconds:
            problems.append(
                f"{auto_key}: simulated {auto * 1e3:.2f} ms/iter is slower "
                f"than fixed {key} ({seconds * 1e3:.2f} ms/iter)"
            )
    if not problems and not any(auto < seconds
                                for seconds in fixed.values()):
        problems.append(
            f"{auto_key}: simulated {auto * 1e3:.2f} ms/iter beats no "
            f"fixed chunk count (tuner is dead weight)"
        )
    return problems


def check_schedule_wins(current: Dict) -> List[str]:
    """Structural gate: the schedule speedups must hold in simulated time."""
    problems = []
    runs = current.get("runs", {})
    for fast_key, slow_key in STRUCTURAL_WINS:
        if fast_key not in runs or slow_key not in runs:
            continue
        fast = runs[fast_key]["sim_seconds"]
        slow = runs[slow_key]["sim_seconds"]
        if fast >= slow:
            problems.append(
                f"{fast_key}: simulated {fast * 1e3:.2f} ms/iter does not "
                f"beat {slow_key} ({slow * 1e3:.2f} ms/iter)"
            )
    problems.extend(check_autotune_win(current))
    return problems


def check_schedules_snapshot(
    current: Dict, snapshot: Dict, tolerance: float = 0.25
) -> List[str]:
    """Wall-clock regression gate (calibration-rescaled) + structural wins."""
    return check_schedule_wins(current) + check_snapshot(
        current, snapshot, tolerance=tolerance
    )


def format_schedules_suite(current: Dict) -> str:
    """Human-readable table of a capture, with speedups vs the baseline."""
    runs = current.get("runs", {})
    base = runs.get("expert-centric", {}).get("sim_seconds")
    header = (
        f"{'schedule':<30} {'sim ms/iter':>12} {'vs EC':>7} "
        f"{'wall ms':>9} {'events':>8}"
    )
    lines = [header, "-" * len(header)]
    for key, entry in runs.items():
        sim = entry["sim_seconds"]
        speedup = f"{base / sim:.2f}x" if base and sim > 0 else "-"
        lines.append(
            f"{key:<30} {sim * 1e3:>12.2f} {speedup:>7} "
            f"{entry['median_s'] * 1e3:>9.1f} {entry['events']:>8d}"
        )
    lines.append(
        f"calibration: {current.get('calibration_s', 0.0) * 1e3:.1f} ms"
    )
    return "\n".join(lines)
