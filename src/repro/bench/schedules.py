"""Benchmark of the task-graph-only schedules (micro-batching, all-reduce).

Times the mixed-R MoE-GPT configuration — one 32-expert block where the
expert-centric family wins and one 256-expert block where data-centric
wins — under the schedules the task graph unlocked: plain expert-centric
(the baseline), micro-batched expert-centric, serial vs. overlapped
backward gradient all-reduce, and the schedule-aware ``auto`` engine.

Unlike the Fig. 14 speed suite, this capture gates on *two* axes:

* wall-clock medians against ``benchmarks/BENCH_schedules.json`` with the
  same calibration rescaling as :mod:`repro.bench.speed` (simulator
  efficiency, host-independent), and
* the **structural schedule wins**, which are pure simulated-time facts:
  micro-batching must beat plain expert-centric and the overlapped
  all-reduce must beat the serial one.  These hold on any host; a
  violation means a schedule regression, not a slow runner.
"""

from __future__ import annotations

import statistics
import sys
import time
from pathlib import Path
from typing import Dict, List, NamedTuple, Optional, Sequence, Tuple

import numpy as np

from .speed import calibrate, check_snapshot

SCHEDULES_SCHEMA = "janus-repro/bench-schedules/v1"

DEFAULT_SCHEDULES_SNAPSHOT_PATH = (
    Path(__file__).resolve().parents[3]
    / "benchmarks"
    / "BENCH_schedules.json"
)

# The mixed-R shape: moe_gpt(32) with block 10 widened to 256 experts.
_MIXED_EXPERTS = {6: 32, 10: 256}
_MACHINES = 4


class ScheduleBenchConfig(NamedTuple):
    """One timed schedule of the mixed-R model."""

    mode: str
    micro_batches: int = 1
    grad_allreduce: str = "none"

    @property
    def key(self) -> str:
        parts = [self.mode]
        if self.micro_batches > 1:
            parts.append(f"mb{self.micro_batches}")
        if self.grad_allreduce != "none":
            parts.append(f"ar-{self.grad_allreduce}")
        return "/".join(parts)


SCHEDULE_FULL_CONFIGS: Tuple[ScheduleBenchConfig, ...] = (
    ScheduleBenchConfig("expert-centric"),
    ScheduleBenchConfig("microbatch-ec", micro_batches=4),
    ScheduleBenchConfig("expert-centric", grad_allreduce="serial"),
    ScheduleBenchConfig("expert-centric", grad_allreduce="overlap"),
    ScheduleBenchConfig("auto", micro_batches=4),
)

# CI smoke subset: the headline structural win plus its baseline.
SCHEDULE_QUICK_CONFIGS: Tuple[ScheduleBenchConfig, ...] = (
    ScheduleBenchConfig("expert-centric"),
    ScheduleBenchConfig("microbatch-ec", micro_batches=4),
)


def _mixed_model():
    from ..config import moe_gpt

    return moe_gpt(32).scaled(experts_per_block=dict(_MIXED_EXPERTS))


def time_schedule_config(spec: ScheduleBenchConfig, runs: int = 2) -> Dict:
    """Time ``runs`` cold iterations of one schedule; report the median."""
    from ..cluster import Cluster
    from ..core import JanusFeatures, build_workload, engine_for

    config = _mixed_model()
    cluster = Cluster(_MACHINES)
    workload = build_workload(config, cluster)
    features = JanusFeatures(
        micro_batches=spec.micro_batches,
        grad_allreduce=spec.grad_allreduce,
    )
    samples: List[float] = []
    events = 0
    sim_seconds = 0.0
    for _ in range(runs):
        engine = engine_for(
            spec.mode, config, cluster, workload=workload,
            features=features, check_memory=False,
        )
        start = time.perf_counter()
        result = engine.run_iteration()
        samples.append(time.perf_counter() - start)
        events = result.sim_events
        sim_seconds = result.seconds
    median = statistics.median(samples)
    return {
        "median_s": median,
        "best_s": min(samples),
        "samples": [round(sample, 6) for sample in samples],
        "sim_seconds": sim_seconds,
        "events": events,
        "events_per_s": events / median if median > 0 else 0.0,
    }


def run_schedules_suite(
    configs: Sequence[ScheduleBenchConfig] = SCHEDULE_FULL_CONFIGS,
    runs: int = 2,
    calibration: Optional[float] = None,
) -> Dict:
    """Time every schedule config and assemble the capture."""
    return {
        "schema": SCHEDULES_SCHEMA,
        "config": {
            "model": "MoE-GPT",
            "experts_per_block": {
                str(block): count
                for block, count in sorted(_MIXED_EXPERTS.items())
            },
            "machines": _MACHINES,
            "runs": runs,
        },
        "calibration_s": calibrate() if calibration is None else calibration,
        "host": {
            "python": sys.version.split()[0],
            "numpy": np.__version__,
        },
        "runs": {
            spec.key: time_schedule_config(spec, runs=runs)
            for spec in configs
        },
    }


# (faster key, slower key) — simulated-time orderings the schedules must
# preserve on every host.  Pairs whose keys a capture did not run (the
# --quick subset) are skipped.
STRUCTURAL_WINS: Tuple[Tuple[str, str], ...] = (
    ("microbatch-ec/mb4", "expert-centric"),
    ("expert-centric/ar-overlap", "expert-centric/ar-serial"),
    ("auto/mb4", "expert-centric"),
)


def check_schedule_wins(current: Dict) -> List[str]:
    """Structural gate: the schedule speedups must hold in simulated time."""
    problems = []
    runs = current.get("runs", {})
    for fast_key, slow_key in STRUCTURAL_WINS:
        if fast_key not in runs or slow_key not in runs:
            continue
        fast = runs[fast_key]["sim_seconds"]
        slow = runs[slow_key]["sim_seconds"]
        if fast >= slow:
            problems.append(
                f"{fast_key}: simulated {fast * 1e3:.2f} ms/iter does not "
                f"beat {slow_key} ({slow * 1e3:.2f} ms/iter)"
            )
    return problems


def check_schedules_snapshot(
    current: Dict, snapshot: Dict, tolerance: float = 0.25
) -> List[str]:
    """Wall-clock regression gate (calibration-rescaled) + structural wins."""
    return check_schedule_wins(current) + check_snapshot(
        current, snapshot, tolerance=tolerance
    )


def format_schedules_suite(current: Dict) -> str:
    """Human-readable table of a capture, with speedups vs the baseline."""
    runs = current.get("runs", {})
    base = runs.get("expert-centric", {}).get("sim_seconds")
    header = (
        f"{'schedule':<30} {'sim ms/iter':>12} {'vs EC':>7} "
        f"{'wall ms':>9} {'events':>8}"
    )
    lines = [header, "-" * len(header)]
    for key, entry in runs.items():
        sim = entry["sim_seconds"]
        speedup = f"{base / sim:.2f}x" if base and sim > 0 else "-"
        lines.append(
            f"{key:<30} {sim * 1e3:>12.2f} {speedup:>7} "
            f"{entry['median_s'] * 1e3:>9.1f} {entry['events']:>8d}"
        )
    lines.append(
        f"calibration: {current.get('calibration_s', 0.0) * 1e3:.1f} ms"
    )
    return "\n".join(lines)
