"""Benchmark of the adaptive control plane under a drifting workload.

Runs an 8-iteration flip-drift schedule — expert popularity alternates
between balanced and Zipf-skewed phases every two iterations — on a
32-expert MoE-GPT shape sized so the paradigm ordering *crosses over*:
micro-batched expert-centric wins the balanced phases while data-centric
wins the skewed ones.  Every static paradigm (data-centric,
expert-centric, pipelined-ec, microbatch-ec, and the static Eq. 1
``auto`` pick) therefore loses some phase; the adaptive controller,
re-picking per-block paradigms from the measured load signals between
iterations, should win both.

Like the schedules suite this capture gates on two axes:

* wall-clock medians against ``benchmarks/BENCH_control.json`` with the
  same calibration rescaling as :mod:`repro.bench.speed`, and
* the **structural control win**, a pure simulated-time fact: the
  adaptive run's total simulated seconds must beat *every* static
  paradigm's total on the same drift trajectory.  That holds on any
  host; a violation means the control policy regressed, not a slow
  runner.
"""

from __future__ import annotations

import statistics
import sys
import time
from pathlib import Path
from typing import Dict, List, NamedTuple, Optional, Sequence, Tuple

import numpy as np

from .speed import calibrate, check_snapshot

CONTROL_SCHEMA = "janus-repro/bench-control/v1"

DEFAULT_CONTROL_SNAPSHOT_PATH = (
    Path(__file__).resolve().parents[3]
    / "benchmarks"
    / "BENCH_control.json"
)

# The crossover shape: batch 64 puts the 32-expert block's Eq. 1 gain
# ratio near 1 (R = 1.33 on two machines), where the measured ordering
# flips with skew — micro-batched EC wins balanced phases, data-centric
# wins Zipf-1.5 phases.
_EXPERTS = 32
_BATCH = 64
_MACHINES = 2
_ITERATIONS = 8
_AUTO_THRESHOLD = 1.5

# Drift schedule shared by every run: two balanced iterations, two
# skewed, repeating.  Deterministic per (seed, iteration, block).
_DRIFT = dict(kind="flip", skew=1.5, period=2, seed=7)

# The controller recovers after a single calm observation: the deviation
# signal comes from exact routing aggregates (not noisy samples), so one
# clean reading is decisive and keeps the adaptation lag at zero.
_CONTROL = dict(recover_after_clean=1)


class ControlBenchConfig(NamedTuple):
    """One timed drift schedule: a static paradigm or the adaptive run."""

    mode: str
    adaptive: bool = False

    @property
    def key(self) -> str:
        return "adaptive" if self.adaptive else self.mode


CONTROL_FULL_CONFIGS: Tuple[ControlBenchConfig, ...] = (
    ControlBenchConfig("data-centric"),
    ControlBenchConfig("expert-centric"),
    ControlBenchConfig("pipelined-ec"),
    ControlBenchConfig("microbatch-ec"),
    ControlBenchConfig("auto"),
    ControlBenchConfig("auto", adaptive=True),
)

# CI smoke subset: the adaptive run against the strongest static.
CONTROL_QUICK_CONFIGS: Tuple[ControlBenchConfig, ...] = (
    ControlBenchConfig("microbatch-ec"),
    ControlBenchConfig("auto", adaptive=True),
)


def _build_engine(spec: ControlBenchConfig):
    from ..cluster import Cluster
    from ..config import moe_gpt
    from ..control import ControlConfig, Controller, ControlPolicy
    from ..core import JanusFeatures, build_workload, engine_for
    from ..workloads import DriftSpec

    config = moe_gpt(_EXPERTS).scaled(batch_size=_BATCH)
    cluster = Cluster(_MACHINES)
    workload = build_workload(config, cluster)
    features = JanusFeatures(micro_batches=4, grad_allreduce="overlap")
    controller = Controller(
        policy=(
            ControlPolicy(config=ControlConfig(**_CONTROL))
            if spec.adaptive
            else None
        ),
        drift=DriftSpec(**_DRIFT),
    )
    kwargs = dict(
        workload=workload, features=features, controller=controller,
        check_memory=False,
    )
    if spec.mode in ("auto", "unified"):
        kwargs["threshold"] = _AUTO_THRESHOLD
    return engine_for(spec.mode, config, cluster, **kwargs), controller


def time_control_config(spec: ControlBenchConfig, runs: int = 1) -> Dict:
    """Time ``runs`` cold drift schedules of one config; report the median.

    Each run is a fresh engine + fresh workload driven through the full
    ``_ITERATIONS``-step drift trajectory, so every config — static or
    adaptive — sees bit-identical workload evolution.
    """
    samples: List[float] = []
    sim_seconds = 0.0
    per_iteration: List[float] = []
    events = 0
    switches = 0
    for _ in range(runs):
        engine, controller = _build_engine(spec)
        start = time.perf_counter()
        results = engine.run(_ITERATIONS)
        samples.append(time.perf_counter() - start)
        sim_seconds = sum(result.seconds for result in results)
        per_iteration = [
            round(result.seconds * 1e3, 3) for result in results
        ]
        events = sum(result.sim_events for result in results)
        switches = controller.switch_count
    median = statistics.median(samples)
    return {
        "median_s": median,
        "best_s": min(samples),
        "samples": [round(sample, 6) for sample in samples],
        "sim_seconds": sim_seconds,
        "per_iteration_ms": per_iteration,
        "events": events,
        "events_per_s": events / median if median > 0 else 0.0,
        "switches": switches,
    }


def run_control_suite(
    configs: Sequence[ControlBenchConfig] = CONTROL_FULL_CONFIGS,
    runs: int = 1,
    calibration: Optional[float] = None,
) -> Dict:
    """Time every control config and assemble the capture."""
    return {
        "schema": CONTROL_SCHEMA,
        "config": {
            "model": "MoE-GPT",
            "experts": _EXPERTS,
            "batch_size": _BATCH,
            "machines": _MACHINES,
            "iterations": _ITERATIONS,
            "auto_threshold": _AUTO_THRESHOLD,
            "drift": dict(_DRIFT),
            "control": dict(_CONTROL),
            "runs": runs,
        },
        "calibration_s": calibrate() if calibration is None else calibration,
        "host": {
            "python": sys.version.split()[0],
            "numpy": np.__version__,
        },
        "runs": {
            spec.key: time_control_config(spec, runs=runs)
            for spec in configs
        },
    }


def check_control_wins(current: Dict) -> List[str]:
    """Structural gate: adaptive must beat every static in simulated time."""
    problems = []
    runs = current.get("runs", {})
    adaptive = runs.get("adaptive")
    if adaptive is None:
        return ["capture has no 'adaptive' run to gate on"]
    fast = adaptive["sim_seconds"]
    for key, entry in runs.items():
        if key == "adaptive":
            continue
        slow = entry["sim_seconds"]
        if fast >= slow:
            problems.append(
                f"adaptive: simulated {fast * 1e3:.2f} ms total does not "
                f"beat static {key} ({slow * 1e3:.2f} ms total)"
            )
    return problems


def check_control_snapshot(
    current: Dict, snapshot: Dict, tolerance: float = 0.25
) -> List[str]:
    """Wall-clock regression gate (calibration-rescaled) + structural win."""
    return check_control_wins(current) + check_snapshot(
        current, snapshot, tolerance=tolerance
    )


def format_control_suite(current: Dict) -> str:
    """Human-readable table of a capture, with speedups vs adaptive."""
    runs = current.get("runs", {})
    base = runs.get("adaptive", {}).get("sim_seconds")
    header = (
        f"{'config':<16} {'sim ms total':>13} {'vs adaptive':>12} "
        f"{'switches':>9} {'wall ms':>9} {'events':>9}"
    )
    lines = [header, "-" * len(header)]
    for key, entry in runs.items():
        sim = entry["sim_seconds"]
        ratio = f"{sim / base:.2f}x" if base and base > 0 else "-"
        lines.append(
            f"{key:<16} {sim * 1e3:>13.2f} {ratio:>12} "
            f"{entry.get('switches', 0):>9d} "
            f"{entry['median_s'] * 1e3:>9.1f} {entry['events']:>9d}"
        )
    lines.append(
        f"calibration: {current.get('calibration_s', 0.0) * 1e3:.1f} ms"
    )
    return "\n".join(lines)
