"""Wall-clock timing of the numerical runtime (trainer steps).

``repro bench --suite runtime`` is the host-time counterpart of the
simulator bench in :mod:`repro.bench.speed`, pointed at the *numerical*
half of the repo: the tensorlib autograd engine driving the
expert-centric / data-centric executors through full
:class:`~repro.runtime.trainer.DistributedTrainer` steps.  Each config
builds a distributed model once, runs warm-up steps (which also fill the
data-centric replica pool), then times ``runs`` steady-state steps and
reports the median host-seconds per step plus routed token-slots per
second.

The capture shares the calibration-rescaled regression gate of the
simulator bench (:func:`repro.bench.speed.check_snapshot` is schema
compatible); the committed snapshot lives in
``benchmarks/BENCH_runtime.json`` and carries the perf-trajectory
``history`` list.

Timing is float64 by default — the dtype the equivalence battery pins —
and ``dtype="float32"`` is an opt-in for experiments; float32 captures
must not be compared against a float64 snapshot.
"""

from __future__ import annotations

import statistics
import sys
import time
from pathlib import Path
from typing import Dict, List, NamedTuple, Optional, Sequence, Tuple

import numpy as np

from .speed import _cpu_count, calibrate

RUNTIME_SCHEMA = "janus-repro/bench-runtime/v1"

# src/repro/bench/runtime_speed.py -> repo root / benchmarks
DEFAULT_RUNTIME_SNAPSHOT_PATH = (
    Path(__file__).resolve().parents[3] / "benchmarks" / "BENCH_runtime.json"
)

_DTYPES = ("float64", "float32")


class RuntimeBenchConfig(NamedTuple):
    """One timed trainer-step configuration."""

    model: str
    mode: str  # "expert-centric" | "data-centric"
    machines: int = 2
    workers: int = 2

    @property
    def key(self) -> str:
        return f"{self.model}/{self.mode}"


_RUNTIME_MODES = ("expert-centric", "data-centric")

RUNTIME_FULL_CONFIGS: Tuple[RuntimeBenchConfig, ...] = tuple(
    RuntimeBenchConfig(model, mode)
    for model in ("trainer-small", "trainer-moe-gpt")
    for mode in _RUNTIME_MODES
)

# CI smoke subset: one steady-state trainer config (data-centric exercises
# the replica pool as well as the sorted dispatch path).
RUNTIME_QUICK_CONFIGS: Tuple[RuntimeBenchConfig, ...] = (
    RuntimeBenchConfig("trainer-moe-gpt", "data-centric"),
)


def _runtime_model_config(name: str):
    """Numerics-scale model shapes.

    ``trainer-moe-gpt`` keeps MoE-GPT's block layout (causal decoder, one
    late MoE block, top_k=4) at a width the float64 numpy engine can step
    in tens of milliseconds; ``trainer-small`` is the smoke shape.
    """
    from ..config import ModelConfig

    if name == "trainer-small":
        return ModelConfig(
            name="trainer-small",
            batch_size=4,
            seq_len=8,
            top_k=2,
            hidden_dim=32,
            num_blocks=2,
            experts_per_block={1: 8},
            num_heads=4,
            vocab_size=128,
            causal=True,
        )
    if name == "trainer-moe-gpt":
        return ModelConfig(
            name="trainer-moe-gpt",
            batch_size=4,
            seq_len=32,
            top_k=4,
            hidden_dim=64,
            num_blocks=4,
            experts_per_block={3: 16},
            num_heads=8,
            vocab_size=256,
            causal=True,
        )
    raise ValueError(f"unknown runtime bench model: {name!r}")


def _build_trainer(spec: RuntimeBenchConfig):
    from ..runtime import DistributedMoETransformer, DistributedTrainer, RankLayout
    from ..tensorlib import Adam

    config = _runtime_model_config(spec.model)
    layout = RankLayout(spec.machines, spec.workers)
    moe_blocks = {index: spec.mode for index in config.moe_block_indices}
    model = DistributedMoETransformer(
        config, layout, paradigm_for_block=moe_blocks,
        rng=np.random.default_rng(0),
    )
    trainer = DistributedTrainer(model, Adam(model.parameters(), lr=1e-3))
    rng = np.random.default_rng(1)
    shape = (config.batch_size, config.seq_len)
    batches = [
        rng.integers(0, config.vocab_size, size=shape)
        for _ in range(layout.world_size)
    ]
    targets = [
        rng.integers(0, config.vocab_size, size=shape)
        for _ in range(layout.world_size)
    ]
    return config, layout, trainer, batches, targets


def time_runtime_config(
    spec: RuntimeBenchConfig,
    runs: int = 3,
    warmup: int = 1,
    dtype: str = "float64",
) -> Dict:
    """Time ``runs`` steady-state trainer steps; report the median.

    Model/optimizer construction and ``warmup`` steps happen outside the
    timed region, so the number is host-seconds per
    :meth:`DistributedTrainer.step` in steady state (replica pools filled,
    optimizer state allocated).
    """
    if dtype not in _DTYPES:
        raise ValueError(f"dtype must be one of {_DTYPES}, got {dtype!r}")
    from ..tensorlib import default_dtype

    with default_dtype(getattr(np, dtype)):
        config, layout, trainer, batches, targets = _build_trainer(spec)
        for _ in range(max(0, warmup)):
            trainer.step(batches, targets)
        samples: List[float] = []
        for _ in range(runs):
            start = time.perf_counter()
            trainer.step(batches, targets)
            samples.append(time.perf_counter() - start)
    median = statistics.median(samples)
    # Routed token-slots per step across all workers: B*S*k per worker.
    slots = config.tokens_per_worker * layout.world_size
    return {
        "median_s": median,
        "best_s": min(samples),
        "samples": [round(sample, 6) for sample in samples],
        "token_slots": slots,
        "token_slots_per_s": slots / median if median > 0 else 0.0,
        "loss": trainer.last_loss,
    }


def run_runtime_suite(
    configs: Sequence[RuntimeBenchConfig] = RUNTIME_FULL_CONFIGS,
    runs: int = 3,
    warmup: int = 1,
    dtype: str = "float64",
    calibration: Optional[float] = None,
) -> Dict:
    """Time every config and assemble the bench-runtime capture.

    Trainer steps all run inline: unlike the simulator suite the runtime
    configs are few and short, so process fan-out would mostly measure
    interpreter start-up.
    """
    suite_start = time.perf_counter()
    runs_section = {
        spec.key: time_runtime_config(spec, runs=runs, warmup=warmup, dtype=dtype)
        for spec in configs
    }
    wall_s = time.perf_counter() - suite_start
    return {
        "schema": RUNTIME_SCHEMA,
        "config": {"runs": runs, "warmup": warmup, "dtype": dtype},
        "calibration_s": calibrate() if calibration is None else calibration,
        "host": {
            "python": sys.version.split()[0],
            "numpy": np.__version__,
            "cpus": _cpu_count(),
        },
        "runs": runs_section,
        "wall_s": wall_s,
    }


def format_runtime_suite(current: Dict) -> str:
    """Human-readable table of a runtime capture."""
    lines = []
    header = (
        f"{'config':<34} {'median ms/step':>15} {'best':>9} "
        f"{'slots':>7} {'slots/s':>10}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for key, entry in current.get("runs", {}).items():
        lines.append(
            f"{key:<34} {entry['median_s'] * 1e3:>15.1f} "
            f"{entry['best_s'] * 1e3:>9.1f} {entry['token_slots']:>7d} "
            f"{entry['token_slots_per_s']:>10.0f}"
        )
    lines.append(
        f"dtype: {current.get('config', {}).get('dtype', 'float64')}  "
        f"calibration: {current.get('calibration_s', 0.0) * 1e3:.1f} ms "
        f"(host {current.get('host', {}).get('cpus', '?')} cpu(s))"
    )
    return "\n".join(lines)
