"""Socket-like endpoints for the control plane (paper §6).

Each device can own an :class:`Endpoint`: a mailbox fed by simulated
control-plane sends.  "The target worker listens to the port of socket all
the time" — modelled as a listener process draining the mailbox.  Control
messages cross the same physical links as data but carry negligible bytes;
their cost is latency (link latency plus a fixed software overhead per
message).
"""

from __future__ import annotations

from typing import Dict

from ..cluster import Device
from ..netsim import Fabric
from ..simkit import Store
from .messages import ControlMessage

__all__ = ["ControlPlane", "Endpoint"]

# Kernel/userspace socket processing cost per control message.
SOCKET_OVERHEAD_S = 15e-6


class Endpoint:
    """A device's control-plane mailbox."""

    def __init__(self, plane: "ControlPlane", device: Device):
        self.plane = plane
        self.device = device
        self.inbox = Store(plane.fabric.env)
        self.received = 0

    def recv(self):
        """Event yielding the next control message (blocks until one lands)."""
        return self.inbox.get()

    def _deliver(self, message: ControlMessage) -> None:
        self.received += 1
        self.inbox.put(message)


class ControlPlane:
    """Routes control messages between endpoints over the fabric."""

    def __init__(self, fabric: Fabric, socket_overhead: float = SOCKET_OVERHEAD_S):
        if socket_overhead < 0:
            raise ValueError("socket_overhead must be non-negative")
        self.fabric = fabric
        self.socket_overhead = socket_overhead
        self._endpoints: Dict[Device, Endpoint] = {}

    def endpoint(self, device: Device) -> Endpoint:
        """Get (or lazily create) the endpoint of ``device``."""
        if device not in self._endpoints:
            self._endpoints[device] = Endpoint(self, device)
        return self._endpoints[device]

    def send(self, message: ControlMessage):
        """Start delivering ``message``; returns an event for its arrival."""
        if message.receiver not in self._endpoints:
            # Create the endpoint eagerly so the message is never dropped.
            self.endpoint(message.receiver)
        env = self.fabric.env

        def deliver():
            flow = self.fabric.transfer(
                message.sender,
                message.receiver,
                message.wire_bytes,
                tag=("control", type(message).__name__, message.message_id),
            )
            yield flow.done
            yield env.timeout(self.socket_overhead)
            self._endpoints[message.receiver]._deliver(message)
            return message

        # Daemon: if fault injection drops the underlying flow, the stuck
        # delivery should not read as a stalled simulation — recovery is
        # the sender's retry timer.
        return env.process(
            deliver(),
            name=f"deliver[{type(message).__name__}->{message.receiver}]",
            daemon=True,
        )
