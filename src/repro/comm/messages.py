"""Typed messages of the pull protocol (paper §6).

Janus builds its pull primitive from the BytePS send/recv APIs: the control
plane runs over sockets (a requester sends a :class:`PullRequest`, the
target listens on its port) and the data plane over RDMA (the target
responds with the expert payload).  The gradient return path mirrors it
with :class:`GradPush`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Hashable

from ..cluster import Device

__all__ = ["ControlMessage", "PullRequest", "PullResponse", "GradPush", "Ack"]

# Control messages are tiny; what matters on the wire is latency, not size.
CONTROL_BYTES = 64.0


@dataclass(frozen=True)
class ControlMessage:
    """Base class for control-plane messages."""

    sender: Device
    receiver: Device
    key: Hashable            # what is being pulled/pushed (e.g. (block, expert))
    message_id: int = field(default_factory=itertools.count().__next__)

    @property
    def wire_bytes(self) -> float:
        return CONTROL_BYTES


@dataclass(frozen=True)
class PullRequest(ControlMessage):
    """Ask ``receiver`` to send the payload named ``key``."""

    payload_bytes: float = 0.0

    def __post_init__(self):
        if self.payload_bytes < 0:
            raise ValueError("payload_bytes must be non-negative")


@dataclass(frozen=True)
class PullResponse(ControlMessage):
    """Header announcing that the data-plane transfer has been issued."""

    payload_bytes: float = 0.0


@dataclass(frozen=True)
class GradPush(ControlMessage):
    """Announce a gradient payload headed to ``receiver`` (the home worker)."""

    payload_bytes: float = 0.0

    def __post_init__(self):
        if self.payload_bytes < 0:
            raise ValueError("payload_bytes must be non-negative")


@dataclass(frozen=True)
class Ack(ControlMessage):
    """Completion acknowledgement for a pull or push."""
