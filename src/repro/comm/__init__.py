"""Pull-based communication substrate (paper §6): socket control plane +
RDMA data plane."""

from .endpoint import ControlPlane, Endpoint
from .messages import Ack, ControlMessage, GradPush, PullRequest, PullResponse
from .pull import PullServer, PullTransport

__all__ = [
    "Ack",
    "ControlMessage",
    "ControlPlane",
    "Endpoint",
    "GradPush",
    "PullRequest",
    "PullResponse",
    "PullServer",
    "PullTransport",
]
