"""Pull-based communication substrate (paper §6): socket control plane +
RDMA data plane."""

from .endpoint import ControlPlane, Endpoint
from .messages import Ack, ControlMessage, GradPush, PullRequest, PullResponse
from .pull import PullFailedError, PullServer, PullTransport

__all__ = [
    "Ack",
    "ControlMessage",
    "ControlPlane",
    "Endpoint",
    "GradPush",
    "PullFailedError",
    "PullRequest",
    "PullResponse",
    "PullServer",
    "PullTransport",
]
