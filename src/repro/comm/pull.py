"""The pull primitive: control-plane request + data-plane response (§6).

``PullTransport.pull`` implements exactly the sequence the paper describes:
"the requester sends a request to the target worker through the socket, and
calls the recv API to receive data.  The target worker listens to the port
of the socket all the time.  After receiving the request, the target worker
calls the send API to send data to the requester through the RDMA
connection."

A :class:`PullServer` runs per serving device: it drains the device's
endpoint mailbox and issues the data-plane transfer for each request,
optionally bounded by a service concurrency (how many outstanding RDMA
sends the worker drives at once).

Resilience: by default a pull to a non-serving device never completes,
exactly like a real socket with no listener.  Passing ``timeout`` to
:meth:`PullTransport.pull` arms a per-attempt timer with bounded retries
and exponential backoff; exhausting the retry budget raises the terminal
:class:`PullFailedError` in the waiting process instead of hanging the
simulation.  Servers can be paused (stop draining), told to drop requests
(outage), and have in-flight serves interrupted — the fault injector uses
these hooks, and the hardened server keeps ``served``/``dropped``/
``ignored``/``malformed`` counters either way.
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional, Set

from ..cluster import Device
from ..netsim import Fabric
from ..simkit import AnyOf, Event, Interrupt, Process, Resource
from .endpoint import ControlPlane
from .messages import ControlMessage, GradPush, PullRequest

__all__ = ["PullFailedError", "PullServer", "PullTransport"]


class PullFailedError(Exception):
    """A pull exhausted its retry budget without receiving the payload."""

    def __init__(self, requester, target, key, attempts: int):
        self.requester = requester
        self.target = target
        self.key = key
        self.attempts = attempts
        super().__init__(
            f"pull {key!r} from {target} to {requester} failed "
            f"after {attempts} attempt(s)"
        )


class PullServer:
    """Serves pull requests arriving at one device's endpoint."""

    def __init__(
        self,
        transport: "PullTransport",
        device: Device,
        concurrency: Optional[int] = None,
    ):
        if concurrency is not None and concurrency <= 0:
            raise ValueError("concurrency must be positive")
        self.transport = transport
        self.device = device
        self.served = 0
        self.dropped = 0
        self.ignored = 0
        self.malformed = 0
        env = transport.fabric.env
        self._slots = (
            Resource(env, capacity=concurrency) if concurrency else None
        )
        self._dropping = False
        self._resume_event: Optional[Event] = None
        self._inflight: Set[Process] = set()
        # The listen loop blocks on recv() forever by design; daemon=True
        # keeps it out of stalled-simulation diagnostics.
        self._process = env.process(
            self._listen(), name=f"pull-server[{device}]", daemon=True
        )

    # -- outage hooks --------------------------------------------------------

    @property
    def paused(self) -> bool:
        return self._resume_event is not None

    def pause(self) -> None:
        """Stop draining the endpoint; requests queue until :meth:`resume`."""
        if self._resume_event is None:
            self._resume_event = self.transport.fabric.env.event()

    def resume(self) -> None:
        if self._resume_event is not None:
            event, self._resume_event = self._resume_event, None
            event.succeed()

    def set_dropping(self, dropping: bool) -> None:
        """While dropping, incoming requests are discarded (and counted)."""
        self._dropping = bool(dropping)

    def interrupt_inflight(self) -> None:
        """Abort every serve currently in flight (requester sees nothing)."""
        for proc in list(self._inflight):
            if proc.is_alive:
                proc.interrupt("server outage")

    # -- serving -------------------------------------------------------------

    def _listen(self):
        endpoint = self.transport.plane.endpoint(self.device)
        env = self.transport.fabric.env
        while True:
            message = yield endpoint.recv()
            if self._resume_event is not None:
                yield self._resume_event
            if not isinstance(message, ControlMessage):
                self.malformed += 1
                continue
            if not isinstance(message, PullRequest):
                self.ignored += 1
                continue  # pushes etc. are handled by their own waiters
            if self._dropping:
                self.dropped += 1
                continue
            proc = env.process(
                self._serve(message),
                name=f"pull-serve[{message.key}]",
                daemon=True,
            )
            self._inflight.add(proc)
            # The completion event IS the process, so the bound discard can
            # serve as the callback directly — no closure per serve.
            proc.callbacks.append(self._inflight.discard)

    def _serve(self, request: PullRequest):
        try:
            if self._slots is not None:
                with self._slots.request() as slot:
                    yield slot
                    yield from self._send_payload(request)
            else:
                yield from self._send_payload(request)
        except Interrupt:
            # The with-block (or request.cancel) released the slot; the
            # requester's retry timer is its path to recovery.
            self.dropped += 1

    def _send_payload(self, request: PullRequest):
        flow = self.transport.fabric.transfer(
            self.device,
            request.sender,
            request.payload_bytes,
            tag=("pull-data", request.key),
        )
        yield flow.done
        self.served += 1
        self.transport._complete(request.message_id)


class PullTransport:
    """Pull/push primitives over a fabric + control plane."""

    def __init__(
        self,
        fabric: Fabric,
        plane: Optional[ControlPlane] = None,
        metrics=None,
    ):
        """``metrics`` (a :class:`~repro.metrics.MetricsRegistry`) mirrors
        the transport's counters into the observability layer: requests
        issued/completed, retries, failures and end-to-end pull latency."""
        self.fabric = fabric
        self.plane = plane if plane is not None else ControlPlane(fabric)
        self.metrics = metrics
        self._servers: Dict[Device, PullServer] = {}
        # message_id -> (completion event, request time).
        self._pending: Dict[int, tuple] = {}
        self.retries = 0
        self.failures = 0

    def serve(self, device: Device, concurrency: Optional[int] = None) -> PullServer:
        """Start (or return) the pull server for ``device``."""
        if device not in self._servers:
            self._servers[device] = PullServer(self, device, concurrency)
        return self._servers[device]

    def server(self, device: Device) -> Optional[PullServer]:
        return self._servers.get(device)

    @property
    def servers(self) -> Dict[Device, PullServer]:
        return dict(self._servers)

    def pull(
        self,
        requester: Device,
        target: Device,
        payload_bytes: float,
        key: Hashable = None,
        timeout: Optional[float] = None,
        max_retries: int = 0,
        backoff: float = 2.0,
    ) -> Event:
        """Pull ``payload_bytes`` from ``target``; event fires on receipt.

        With ``timeout=None`` (the default) the target must be serving
        (:meth:`serve`) or the pull never completes — exactly like a real
        socket with no listener.  With a ``timeout``, each attempt waits at
        most that long, then re-sends the request up to ``max_retries``
        times with the timeout scaled by ``backoff`` per retry; when the
        budget is exhausted the returned event fails with
        :class:`PullFailedError`.
        """
        if payload_bytes < 0:
            raise ValueError("payload_bytes must be non-negative")
        if timeout is None:
            request = PullRequest(
                sender=requester,
                receiver=target,
                key=key,
                payload_bytes=payload_bytes,
            )
            done = self.fabric.env.event()
            self._pending[request.message_id] = (done, self.fabric.env.now)
            self._count("pull.client.issued")
            self.plane.send(request)
            return done
        if timeout <= 0:
            raise ValueError("timeout must be positive")
        if max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if backoff < 1.0:
            raise ValueError("backoff must be >= 1")
        return self.fabric.env.process(
            self._pull_with_retry(
                requester, target, payload_bytes, key,
                timeout, max_retries, backoff,
            ),
            name=f"pull-retry[{key}]",
        )

    def _pull_with_retry(
        self, requester, target, payload_bytes, key,
        timeout, max_retries, backoff,
    ):
        env = self.fabric.env
        delay = timeout
        attempts = max_retries + 1
        for attempt in range(attempts):
            request = PullRequest(
                sender=requester,
                receiver=target,
                key=key,
                payload_bytes=payload_bytes,
            )
            done = env.event()
            self._pending[request.message_id] = (done, env.now)
            self._count("pull.client.issued")
            self.plane.send(request)
            yield AnyOf(env, [done, env.timeout(delay)])
            if done.triggered:
                return
            # Timed out: forget the attempt so a late response is ignored,
            # then back off before re-sending.
            self._pending.pop(request.message_id, None)
            if attempt < max_retries:
                self.retries += 1
                self._count("pull.client.retries")
                delay *= backoff
        self.failures += 1
        self._count("pull.client.failures")
        raise PullFailedError(requester, target, key, attempts)

    def push(
        self,
        sender: Device,
        target: Device,
        payload_bytes: float,
        key: Hashable = None,
    ) -> Event:
        """Push a payload (gradient return): control header + data plane."""
        if payload_bytes < 0:
            raise ValueError("payload_bytes must be non-negative")
        env = self.fabric.env
        header = GradPush(
            sender=sender, receiver=target, key=key,
            payload_bytes=payload_bytes,
        )

        def run():
            yield self.plane.send(header)
            flow = self.fabric.transfer(
                sender, target, payload_bytes, tag=("push-data", key)
            )
            yield flow.done

        return env.process(run(), name=f"push[{key}]")

    def _count(self, name: str, **labels) -> None:
        if self.metrics is not None:
            self.metrics.inc(name, **labels)

    def _complete(self, message_id: int) -> None:
        entry = self._pending.pop(message_id, None)
        if entry is None:
            return
        done, requested_at = entry
        if not done.triggered:
            self._count("pull.client.completed")
            if self.metrics is not None:
                self.metrics.observe(
                    "pull.client.latency_s",
                    self.fabric.env.now - requested_at,
                )
            done.succeed()
