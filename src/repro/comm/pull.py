"""The pull primitive: control-plane request + data-plane response (§6).

``PullTransport.pull`` implements exactly the sequence the paper describes:
"the requester sends a request to the target worker through the socket, and
calls the recv API to receive data.  The target worker listens to the port
of the socket all the time.  After receiving the request, the target worker
calls the send API to send data to the requester through the RDMA
connection."

A :class:`PullServer` runs per serving device: it drains the device's
endpoint mailbox and issues the data-plane transfer for each request,
optionally bounded by a service concurrency (how many outstanding RDMA
sends the worker drives at once).
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional

from ..cluster import Device
from ..netsim import Fabric
from ..simkit import Event, Resource
from .endpoint import ControlPlane
from .messages import GradPush, PullRequest

__all__ = ["PullServer", "PullTransport"]


class PullServer:
    """Serves pull requests arriving at one device's endpoint."""

    def __init__(
        self,
        transport: "PullTransport",
        device: Device,
        concurrency: Optional[int] = None,
    ):
        if concurrency is not None and concurrency <= 0:
            raise ValueError("concurrency must be positive")
        self.transport = transport
        self.device = device
        self.served = 0
        env = transport.fabric.env
        self._slots = (
            Resource(env, capacity=concurrency) if concurrency else None
        )
        self._process = env.process(self._listen())

    def _listen(self):
        endpoint = self.transport.plane.endpoint(self.device)
        env = self.transport.fabric.env
        while True:
            message = yield endpoint.recv()
            if not isinstance(message, PullRequest):
                continue  # pushes etc. are handled by their own waiters
            env.process(self._serve(message))

    def _serve(self, request: PullRequest):
        if self._slots is not None:
            with self._slots.request() as slot:
                yield slot
                yield from self._send_payload(request)
        else:
            yield from self._send_payload(request)

    def _send_payload(self, request: PullRequest):
        flow = self.transport.fabric.transfer(
            self.device,
            request.sender,
            request.payload_bytes,
            tag=("pull-data", request.key),
        )
        yield flow.done
        self.served += 1
        self.transport._complete(request.message_id)


class PullTransport:
    """Pull/push primitives over a fabric + control plane."""

    def __init__(self, fabric: Fabric, plane: Optional[ControlPlane] = None):
        self.fabric = fabric
        self.plane = plane if plane is not None else ControlPlane(fabric)
        self._servers: Dict[Device, PullServer] = {}
        self._pending: Dict[int, Event] = {}

    def serve(self, device: Device, concurrency: Optional[int] = None) -> PullServer:
        """Start (or return) the pull server for ``device``."""
        if device not in self._servers:
            self._servers[device] = PullServer(self, device, concurrency)
        return self._servers[device]

    def pull(
        self,
        requester: Device,
        target: Device,
        payload_bytes: float,
        key: Hashable = None,
    ) -> Event:
        """Pull ``payload_bytes`` from ``target``; event fires on receipt.

        The target must be serving (:meth:`serve`) or the pull never
        completes — exactly like a real socket with no listener.
        """
        if payload_bytes < 0:
            raise ValueError("payload_bytes must be non-negative")
        request = PullRequest(
            sender=requester,
            receiver=target,
            key=key,
            payload_bytes=payload_bytes,
        )
        done = self.fabric.env.event()
        self._pending[request.message_id] = done
        self.plane.send(request)
        return done

    def push(
        self,
        sender: Device,
        target: Device,
        payload_bytes: float,
        key: Hashable = None,
    ) -> Event:
        """Push a payload (gradient return): control header + data plane."""
        if payload_bytes < 0:
            raise ValueError("payload_bytes must be non-negative")
        env = self.fabric.env
        header = GradPush(
            sender=sender, receiver=target, key=key,
            payload_bytes=payload_bytes,
        )

        def run():
            yield self.plane.send(header)
            flow = self.fabric.transfer(
                sender, target, payload_bytes, tag=("push-data", key)
            )
            yield flow.done

        return env.process(run())

    def _complete(self, message_id: int) -> None:
        done = self._pending.pop(message_id, None)
        if done is not None and not done.triggered:
            done.succeed()
