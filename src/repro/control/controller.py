"""The engine-facing controller: apply drift, harvest, decide, actuate.

:class:`Controller` is the object the engine's run loop talks to.  Before
every iteration it advances the workload's drift process (if any); after
every iteration it harvests :class:`~repro.control.signals.ControlSignals`,
runs the :class:`~repro.control.policy.ControlPolicy`, and actuates the
decision — rewriting the engine's per-block strategy map and replica map,
emitting ``control.*`` metrics and trace marks.  Everything happens
*between* iterations: the controller never touches a live simulation.

This module deliberately never imports :mod:`repro.core` at module level,
so ``repro.core.engine`` can lazily import it (for the
``recover_after_clean`` auto-wrap) without a cycle.
"""

from __future__ import annotations

from typing import Optional

from .policy import ControlDecision, ControlPolicy, CostModel
from .signals import ControlSignals

__all__ = ["Controller"]


class Controller:
    """Between-iteration control loop for one :class:`JanusEngine`.

    ``policy`` may be None (drift-only controller: the workload shifts but
    nothing adapts — the static-paradigm baseline under drift); ``drift``
    may be None (adapt-only controller for organically shifting or faulted
    workloads).  ``decisions`` keeps the full decision history for
    inspection and the CLI summary.
    """

    def __init__(self, policy: Optional[ControlPolicy] = None, drift=None):
        self.policy = policy
        self.drift = drift
        self.decisions = []
        self._cost_model: Optional[CostModel] = None
        self._drift_applied: Optional[int] = None

    def prepare(self, engine) -> None:
        """Called by the engine before each iteration it runs.

        Normally :meth:`observe` has already advanced the drift process for
        this iteration (it decides on the upcoming routing); this covers
        the first iteration and standalone ``run_iteration`` calls.
        """
        iteration = engine.iterations_run
        if self.policy is not None and self._cost_model is None:
            self.policy.attach(dict(engine.block_strategies))
            self._cost_model = CostModel.from_engine(engine)
            if self.policy.config.adapt_chunks:
                # Arm the engine's per-iteration chunk retune: the engine
                # re-runs the tuner at every iteration start, which *is*
                # the controller's between-iteration chunk adaptation
                # (each retune sees the freshly drifted routing).
                import dataclasses

                engine.features = dataclasses.replace(
                    engine.features, chunk_autotune=True
                )
        if self.drift is not None and self._drift_applied != iteration:
            from ..workloads.drift import apply_drift

            apply_drift(engine.workload, self.drift, iteration)
            self._drift_applied = iteration

    def observe(self, engine, result) -> Optional[ControlDecision]:
        """Called by the engine after each iteration; actuates the policy.

        Janus schedules *fine-grained*: each iteration's paradigm choice
        may use that iteration's routing, which the gate produces before
        any MoE communication starts.  So the drift process is advanced
        first, and the decision for iteration ``i+1`` sees iteration
        ``i+1``'s routing aggregates alongside iteration ``i``'s measured
        outcome (times, fault counters) — adaptation without a one-
        iteration lag, exactly the information a real control plane holds
        between the gate pass and the dispatch.
        """
        next_iteration = engine.iterations_run
        if self.drift is not None and self._drift_applied != next_iteration:
            from ..workloads.drift import apply_drift

            apply_drift(engine.workload, self.drift, next_iteration)
            self._drift_applied = next_iteration
        if self.policy is None:
            return None
        signals = ControlSignals.harvest(
            result, engine.workload, iteration=next_iteration
        )
        decision = self.policy.decide(signals, self._cost_model)
        self._actuate(engine, result, decision)
        self.decisions.append(decision)
        return decision

    # -- actuation -----------------------------------------------------------

    def _actuate(self, engine, result, decision: ControlDecision) -> None:
        metrics = engine.metrics
        trace = result.trace
        now = result.seconds
        for block in sorted(decision.strategies):
            resolved = engine.set_block_strategy(
                block, decision.strategies[block]
            )
            cause = decision.causes.get(block)
            if cause == "fault":
                # Exact legacy bookkeeping of _apply_degradation: the fault
                # arm stays observable through the same stats + trace lane.
                if result.fault_stats is not None:
                    result.fault_stats.degraded_blocks[block] = resolved
                trace.mark(
                    "fault.degrade", now, block=block, strategy=resolved
                )
                if metrics is not None:
                    metrics.inc("control.fault_degrades", block=block)
            elif cause == "recover":
                trace.mark(
                    "control.recover", now, block=block, strategy=resolved
                )
                if metrics is not None:
                    metrics.inc("control.recoveries", block=block)
            else:
                trace.mark(
                    "control.switch", now, block=block, strategy=resolved,
                    cause=cause,
                )
                if metrics is not None:
                    metrics.inc("control.switches", block=block)
        for block, expert, machine in decision.replicate:
            trace.mark(
                "control.replicate", now, block=block, expert=expert,
                machine=machine,
            )
            if metrics is not None:
                metrics.inc("control.replications", block=block)
        for block, expert, machine in decision.evict:
            trace.mark(
                "control.evict", now, block=block, expert=expert,
                machine=machine,
            )
            if metrics is not None:
                metrics.inc("control.evictions", block=block)
        engine.replicas = {
            block: dict(experts)
            for block, experts in decision.replicas.items()
        }

    # -- inspection ----------------------------------------------------------

    @property
    def switch_count(self) -> int:
        return sum(len(d.strategies) for d in self.decisions)

    def summary(self) -> str:
        """One-line human summary for the CLI."""
        switches = sum(
            1
            for d in self.decisions
            for c in d.causes.values()
            if c in ("fault", "load")
        )
        recoveries = sum(
            1 for d in self.decisions
            for c in d.causes.values() if c == "recover"
        )
        replications = sum(len(d.replicate) for d in self.decisions)
        evictions = sum(len(d.evict) for d in self.decisions)
        return (
            f"control: {switches} switch(es), {recoveries} recover(ies), "
            f"{replications} replication(s), {evictions} eviction(s)"
        )
