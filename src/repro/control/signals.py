"""Measured per-iteration signals the control policy decides on.

FSMoE's thesis (PAPERS.md) is that scheduling decisions should be driven by
*measured* quantities, not model assumptions.  :class:`ControlSignals`
harvests one finished iteration: the engine-level outcome
(:class:`~repro.core.engine.IterationResult` — simulated seconds, All-to-All
share, overlap efficiency, fault counters) plus per-block load aggregates
(:class:`BlockLoadSignals`) computed from the routing matrices the iteration
actually ran.  Everything here is pure post-hoc numpy bookkeeping — nothing
touches the simulation clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional, Tuple

import numpy as np

__all__ = ["BlockLoadSignals", "ControlSignals"]


@dataclass(frozen=True)
class BlockLoadSignals:
    """Load aggregates for one MoE block's routing matrix.

    Machine-level quantities use the engine's contiguous round-robin
    placement (worker ``r`` owns experts ``[r*E, (r+1)*E)``); cross-machine
    token counts exclude intra-machine traffic, which never touches a NIC.
    """

    block: int
    num_experts: int
    experts_per_worker: int
    tokens_total: int
    # Fraction of all routed token-slots each expert received.
    expert_share: np.ndarray = field(repr=False)
    # max / mean of tokens received, at rank and owner-machine granularity.
    rank_imbalance: float = 1.0
    machine_imbalance: float = 1.0
    # Tokens the hottest rank must compute (paces synchronous All-to-All).
    max_rank_recv: int = 0
    # Max over machines of max(cross-machine tokens in, out) — the NIC
    # bottleneck an All-to-All dispatch of this block would hit.
    a2a_bottleneck_tokens: int = 0
    # Per machine: distinct external experts its workers route tokens to
    # (the data-centric fetch set), and the count of them.
    external_demand: Dict[int, FrozenSet[int]] = field(default_factory=dict)
    external_counts: Dict[int, int] = field(default_factory=dict)
    # Mean (over ranks) number of experts with >0 routed tokens — the
    # kernel-launch count a data-centric worker pays.
    active_experts_per_rank: float = 0.0

    @property
    def max_external_count(self) -> int:
        """Largest per-machine external fetch set (paces DC fetching)."""
        if not self.external_counts:
            return 0
        return max(self.external_counts.values())

    @classmethod
    def from_block(cls, block, layout) -> "BlockLoadSignals":
        """Aggregate one :class:`~repro.core.workload.BlockWorkload`."""
        routing = block.routing
        num_experts = block.num_experts
        world = layout.world_size
        machines = layout.num_machines
        per_machine = layout.workers_per_machine
        experts_per_worker = num_experts // world

        recv = routing.sum(axis=0)                       # (E,) per expert
        total = int(recv.sum())
        rank_recv = recv.reshape(world, experts_per_worker).sum(axis=1)
        machine_recv = rank_recv.reshape(machines, per_machine).sum(axis=1)

        # Machine-granularity dispatch matrix S[src, dst] = tokens ranks of
        # ``src`` route to experts owned by machine ``dst``.
        by_src_machine = routing.reshape(
            machines, per_machine, num_experts
        ).sum(axis=1)
        experts_per_machine = experts_per_worker * per_machine
        dispatch = by_src_machine.reshape(
            machines, machines, experts_per_machine
        ).sum(axis=2)
        cross = dispatch - np.diag(np.diag(dispatch))
        out_tokens = cross.sum(axis=1)
        in_tokens = cross.sum(axis=0)
        bottleneck = int(np.maximum(out_tokens, in_tokens).max(initial=0))

        owner_machine = (
            np.arange(num_experts) // experts_per_worker
        ) // per_machine
        external_demand: Dict[int, FrozenSet[int]] = {}
        external_counts: Dict[int, int] = {}
        for machine in range(machines):
            needed = np.flatnonzero(
                (by_src_machine[machine] > 0) & (owner_machine != machine)
            )
            external_demand[machine] = frozenset(int(e) for e in needed)
            external_counts[machine] = int(needed.size)

        def imbalance(values: np.ndarray) -> float:
            mean = float(values.mean())
            return float(values.max()) / mean if mean > 0 else 1.0

        return cls(
            block=block.index,
            num_experts=num_experts,
            experts_per_worker=experts_per_worker,
            tokens_total=total,
            expert_share=recv / max(1, total),
            rank_imbalance=imbalance(rank_recv),
            machine_imbalance=imbalance(machine_recv),
            max_rank_recv=int(rank_recv.max(initial=0)),
            a2a_bottleneck_tokens=bottleneck,
            external_demand=external_demand,
            external_counts=external_counts,
            active_experts_per_rank=float((routing > 0).sum(axis=1).mean()),
        )


@dataclass(frozen=True)
class ControlSignals:
    """Everything one control step sees about the finished iteration."""

    iteration: int
    seconds: float
    strategies: Dict[int, str]
    blocks: Dict[int, BlockLoadSignals]
    a2a_share: float = 0.0
    overlap: float = 0.0
    fault_stats: Optional[object] = None
    cache_fills: Dict[int, int] = field(default_factory=dict)
    nic_egress_bytes: Tuple[float, ...] = ()

    @property
    def fault_clean(self) -> bool:
        """No fault symptom was observed cluster-wide this iteration.

        This is the fault arm's recovery signal.  It is necessarily
        *indirect*: a block already degraded to expert-centric issues no
        pull requests, so its own counters stay silent even while the fault
        rages — but any block still pulling (or any gradient push) would
        have tripped these counters.  Recovery is therefore probation-based:
        a clean streak earns a *trial* return to the preferred paradigm, and
        re-degrading during probation doubles the required streak.
        """
        stats = self.fault_stats
        if stats is None:
            return True
        return (
            stats.dropped_messages == 0
            and stats.stale_fallbacks == 0
            and stats.grad_failures == 0
        )

    @classmethod
    def harvest(
        cls, result, workload, iteration: int, ctx=None
    ) -> "ControlSignals":
        """Build signals from one iteration's result + the workload it ran.

        ``ctx`` (the iteration's :class:`~repro.core.context
        .IterationContext`) contributes cache-fill counts when available;
        the engine does not retain it, so controller-driven harvesting
        falls back to the result alone.
        """
        from ..metrics.collect import overlap_efficiency

        layout = workload.layout
        blocks = {
            block.index: BlockLoadSignals.from_block(block, layout)
            for block in workload.moe_blocks()
        }
        return cls(
            iteration=iteration,
            seconds=result.seconds,
            strategies=dict(result.strategies),
            blocks=blocks,
            a2a_share=result.all_to_all_share,
            overlap=overlap_efficiency(result.trace, result.iteration),
            fault_stats=result.fault_stats,
            cache_fills=dict(ctx.cache_fills) if ctx is not None else {},
            nic_egress_bytes=tuple(
                float(b) for b in result.nic_egress_bytes
            ),
        )
