"""Online adaptive control plane (ROADMAP item 3).

Between-iteration feedback loop over the timed engine: harvest one
iteration's measured signals (:mod:`repro.control.signals`), decide
(:mod:`repro.control.policy`) which blocks should switch paradigm, which
hot experts to replicate across machines and which cold replicas to evict,
and apply the decisions plus the next iteration's popularity drift
(:mod:`repro.control.controller`).  Unifies the fault-driven
:class:`~repro.faults.DegradationPolicy` of the resilience layer and the
new load-driven adaptation behind one policy interface, with hysteresis,
cooldown and probation-based recovery so decisions neither flap nor
ratchet one-way.
"""

from .controller import Controller
from .policy import (
    ChunkPlan,
    ControlConfig,
    ControlDecision,
    ControlPolicy,
    CostModel,
    tune_engine_chunks,
)
from .signals import BlockLoadSignals, ControlSignals

__all__ = [
    "BlockLoadSignals",
    "ChunkPlan",
    "ControlConfig",
    "ControlDecision",
    "ControlPolicy",
    "ControlSignals",
    "Controller",
    "CostModel",
    "tune_engine_chunks",
]
