"""Decision logic of the adaptive control plane.

:class:`ControlPolicy` runs once between iterations, over the measured
:class:`~repro.control.signals.ControlSignals`, and emits a
:class:`ControlDecision`: per-block paradigm switches (fault-driven,
load-driven, or recovery) plus the target expert-replica map.  Three design
rules keep it honest:

* **Adapt to change, not to level.**  Load signals are compared against a
  per-block *reference* captured on the first observed iteration, and the
  load/replication arms only engage once the deviation from that reference
  exceeds a deadband.  The simulation is deterministic, so on a static
  workload the deviation is exactly zero and the policy is structurally
  inert — attaching a controller to a drift-free, fault-free run is
  bit-identical to not attaching one.
* **Hysteresis everywhere.**  Switching needs ``patience`` consecutive
  drifted iterations, a cost-model win of at least ``hysteresis`` margin,
  and a ``cooldown`` gap between switches; recovery needs a calm/clean
  streak and exits through a ``probation`` window.  Oscillating load
  therefore cannot flap a block (tested in ``tests/test_control_policy``).
* **Probation-based recovery.**  A recovered block is on probation; if it
  re-degrades during (or right after) probation, the clean-streak target
  doubles, up to ``max_backoff`` — repeated flapping gets exponentially
  harder, never one-way as the old ratchet was.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

import numpy as np

from .signals import BlockLoadSignals, ControlSignals

__all__ = [
    "ControlConfig",
    "ControlDecision",
    "ControlPolicy",
    "CostModel",
    "ChunkPlan",
    "tune_engine_chunks",
]


@dataclass(frozen=True)
class ControlConfig:
    """Knobs of the load/replication arms (the fault arm keeps its knobs on
    :class:`~repro.faults.DegradationPolicy`).

    ``deviation`` is the deadband: relative growth of a block's
    machine-imbalance over its reference before the load arm may act.
    ``recover_deviation`` (default: half the deadband) is the calm
    threshold for recovery — a lower exit than entry bar, classic
    hysteresis.  ``hysteresis`` is the required cost-model win margin;
    ``patience`` the consecutive drifted iterations before switching;
    ``cooldown`` the minimum gap (iterations) after any switch;
    ``recover_after_clean`` the calm/clean streak earning recovery;
    ``probation`` the post-recovery window during which re-degrading
    doubles the streak target (up to ``max_backoff``).

    Replication: only blocks running a strategy in ``replicable`` (the
    pull-based ones — replicas serve fetches, so All-to-All blocks cannot
    use them) get replicas; an expert must hold ``hot_factor/E`` of the
    block's tokens to gain replicas and keeps them down to
    ``evict_factor/E`` (enter/exit watermarks); ``max_replicas`` caps
    cluster-wide ``(block, expert, machine)`` entries.
    """

    deviation: float = 0.25
    recover_deviation: Optional[float] = None
    # Total-variation distance of a block's expert-share vector from its
    # reference before the replication arm engages: catches hotspot
    # *identity* shifts (rotate drift) that leave machine imbalance flat.
    share_deviation: float = 0.1
    hysteresis: float = 0.1
    patience: int = 1
    cooldown: int = 1
    recover_after_clean: int = 2
    probation: int = 2
    max_backoff: int = 4
    load_strategy: str = "data-centric"
    adapt_load: bool = True
    adapt_replicas: bool = True
    # Re-tune per-block All-to-All chunk counts from measured routing
    # before every iteration (the FSMoE-style chunk autotuner).  Off by
    # default so attaching a controller stays bit-identical.
    adapt_chunks: bool = False
    replicable: Tuple[str, ...] = ("data-centric",)
    hot_factor: float = 4.0
    evict_factor: float = 2.0
    max_replicas: int = 16

    def __post_init__(self):
        if self.deviation < 0:
            raise ValueError("deviation must be non-negative")
        if self.recover_deviation is not None and self.recover_deviation < 0:
            raise ValueError("recover_deviation must be non-negative")
        if self.share_deviation < 0:
            raise ValueError("share_deviation must be non-negative")
        if self.hysteresis < 0:
            raise ValueError("hysteresis must be non-negative")
        if self.patience <= 0 or self.cooldown < 0:
            raise ValueError("patience must be positive, cooldown >= 0")
        if self.recover_after_clean <= 0 or self.probation <= 0:
            raise ValueError("recover_after_clean/probation must be positive")
        if self.max_backoff < 1:
            raise ValueError("max_backoff must be >= 1")
        if self.hot_factor <= 1 or self.evict_factor <= 0:
            raise ValueError("hot_factor must be > 1, evict_factor > 0")
        if self.evict_factor > self.hot_factor:
            raise ValueError("evict_factor must not exceed hot_factor")
        if self.max_replicas < 0:
            raise ValueError("max_replicas must be non-negative")

    @property
    def calm_deviation(self) -> float:
        return (
            self.recover_deviation
            if self.recover_deviation is not None
            else self.deviation / 2.0
        )

    @classmethod
    def parse(cls, text: str) -> "ControlConfig":
        """Parse the CLI grammar, e.g.
        ``deviation=0.3;patience=2;replicas=off``.  The bare word
        ``adaptive`` (or an empty string) means all defaults; booleans
        accept ``on``/``off``.
        """
        spec = cls()
        fields_ = {
            "deviation": float, "recover_deviation": float,
            "share_deviation": float,
            "hysteresis": float, "patience": int, "cooldown": int,
            "recover_after_clean": int, "probation": int, "max_backoff": int,
            "load_strategy": str, "hot_factor": float, "evict_factor": float,
            "max_replicas": int,
        }
        flags = {
            "load": "adapt_load",
            "replicas": "adapt_replicas",
            "chunks": "adapt_chunks",
        }
        for clause in text.split(";"):
            clause = clause.strip()
            if not clause or clause == "adaptive":
                continue
            if "=" not in clause:
                raise ValueError(f"malformed control clause {clause!r}")
            key, _, value = clause.partition("=")
            key = key.strip().replace("-", "_")
            value = value.strip()
            if key in flags:
                if value not in ("on", "off"):
                    raise ValueError(
                        f"control flag {key!r} must be on/off, got {value!r}"
                    )
                spec = replace(spec, **{flags[key]: value == "on"})
            elif key in fields_:
                try:
                    spec = replace(spec, **{key: fields_[key](value)})
                except ValueError as exc:
                    raise ValueError(
                        f"bad value for control field {key!r}: {value!r}"
                    ) from exc
            else:
                raise ValueError(f"unknown control field {key!r}")
        return spec


@dataclass(frozen=True)
class CostModel:
    """Closed-form per-block iteration-time estimates from *measured* load.

    The same ingredients as Eq. 1 and the ``auto_schedule_map`` selector,
    but evaluated on the iteration's observed routing aggregates instead of
    the balanced-routing assumption: the expert-centric estimate pays the
    measured cross-machine All-to-All bottleneck and the hottest rank's
    compute (a synchronous collective is paced by its slowest participant),
    while the data-centric estimate pays the largest per-machine external
    fetch set — which skew does not inflate.  Absolute accuracy is not the
    goal; the *ordering* under a hysteresis margin is what the policy
    consumes (FSMoE-style measured cost modelling).
    """

    token_bytes: float
    expert_bytes: float
    expert_flops: float
    gpu_flops: float
    nic_bandwidth: float          # aggregate bytes/s per machine
    kernel_overhead: float
    micro_batches: int
    ec_pipeline_chunks: int
    nic_latency: float = 0.0      # per-transfer NIC latency (seconds)

    _BACKWARD_TOTAL = 3.0         # fwd + 2x bwd sweeps

    @classmethod
    def from_engine(cls, engine) -> "CostModel":
        spec = engine.cluster.spec
        workload = engine.workload
        return cls(
            token_bytes=workload.token_bytes,
            expert_bytes=workload.expert_bytes,
            expert_flops=workload.expert_flops,
            gpu_flops=spec.gpu.effective_flops(workload.config.hidden_dim),
            nic_bandwidth=spec.num_nics * spec.nic.bandwidth,
            kernel_overhead=spec.gpu.kernel_overhead,
            micro_batches=engine.features.micro_batches,
            ec_pipeline_chunks=engine.features.ec_pipeline_chunks,
            nic_latency=spec.nic.latency,
        )

    def _a2a_seconds(self, sig: BlockLoadSignals) -> float:
        """4 All-to-Alls per iteration (dispatch+combine, fwd and bwd) over
        the measured cross-machine bottleneck."""
        return (
            4.0 * sig.a2a_bottleneck_tokens * self.token_bytes
            / self.nic_bandwidth
        )

    def _hot_compute_seconds(self, sig: BlockLoadSignals) -> float:
        return self._BACKWARD_TOTAL * sig.max_rank_recv * self.expert_flops \
            / self.gpu_flops

    def chunk_time(self, sig: BlockLoadSignals, chunks: int) -> float:
        """Estimated fwd+bwd seconds for the block under a K-chunked,
        compute-overlapped All-to-All schedule (pipelined-ec or
        microbatch-ec with K micro-batches): the longer of comm and hot
        compute hides all but one chunk of the shorter, and every extra
        chunk re-pays the per-expert kernel launch."""
        sweeps = self._BACKWARD_TOTAL
        a2a = self._a2a_seconds(sig)
        hot_compute = self._hot_compute_seconds(sig)
        launch = sweeps * self.kernel_overhead * sig.experts_per_worker
        overlapped = (
            max(a2a, hot_compute)
            + min(a2a, hot_compute) / chunks
        )
        extra_launch = (chunks - 1) * self.kernel_overhead \
            * sig.experts_per_worker * sweeps
        return overlapped + launch + extra_launch

    def a2a_chunk_seconds(self, sig: BlockLoadSignals, chunks: int) -> float:
        """Predicted duration of one dispatch/combine All-to-All chunk
        (uncontended): the per-phase bottleneck bytes split K ways, plus
        the send/ack NIC latency every chunked transfer pays regardless
        of its size."""
        return (
            sig.a2a_bottleneck_tokens * self.token_bytes
            / self.nic_bandwidth / chunks
            + 2.0 * self.nic_latency
        )

    def tune_chunks(self, sig: BlockLoadSignals, max_chunks: int = 64) -> int:
        """Analytic per-block chunk-count optimum over the measured load.

        ``chunk_time`` is convex in K: ``min(a2a, hot)/K`` falls while
        ``(K-1)·o`` rises (o = per-sweep kernel relaunch cost), so the
        unconstrained optimum is ``K* = sqrt(min(a2a, hot) / o)``.  The
        result is clamped to the divisibility/capacity lattice: powers of
        two (binary-exact splits of the routing matrix, so chunked traffic
        totals stay bit-identical to the unchunked sum), at most
        ``max_chunks``, and at most one token per chunk on the hottest
        rank.  Convexity means only the two lattice neighbours of K* can
        win; ties break toward fewer chunks.
        """
        sweeps = self._BACKWARD_TOTAL
        overhead = sweeps * self.kernel_overhead * sig.experts_per_worker
        cap = 1
        while cap * 2 <= min(max_chunks, max(1, sig.max_rank_recv)):
            cap *= 2
        shorter = min(self._a2a_seconds(sig), self._hot_compute_seconds(sig))
        if shorter <= 0.0:
            return 1
        if overhead <= 0.0:
            return cap
        optimum = math.sqrt(shorter / overhead)
        below = 1
        while below * 2 <= optimum:
            below *= 2
        candidates = {min(below, cap), min(below * 2, cap)}
        return min(candidates, key=lambda k: (self.chunk_time(sig, k), k))

    def estimate(self, sig: BlockLoadSignals, strategy: str) -> float:
        """Estimated fwd+bwd seconds for ``sig``'s block under ``strategy``."""
        sweeps = self._BACKWARD_TOTAL
        a2a = self._a2a_seconds(sig)
        hot_compute = self._hot_compute_seconds(sig)
        launch = sweeps * self.kernel_overhead * sig.experts_per_worker
        if strategy == "expert-centric":
            return a2a + hot_compute + launch
        if strategy in ("pipelined-ec", "microbatch-ec"):
            chunks = (
                self.ec_pipeline_chunks if strategy == "pipelined-ec"
                else self.micro_batches
            )
            return self.chunk_time(sig, chunks)
        if strategy == "data-centric":
            # Fetch the largest external expert set (fwd) and push the
            # gradients home (bwd); prefetch overlaps roughly half of it
            # behind dense compute (§5.3).
            pull = (
                2.0 * sig.max_external_count * self.expert_bytes
                / self.nic_bandwidth
            )
            # DC computes where the tokens already are: every rank works on
            # its own routed batch, so compute is the *mean*, not the max.
            world = max(1, sig.num_experts // sig.experts_per_worker)
            mean_rank_tokens = sig.tokens_total / world
            compute = sweeps * mean_rank_tokens * self.expert_flops \
                / self.gpu_flops
            launch_dc = sweeps * self.kernel_overhead \
                * sig.active_experts_per_rank
            return 0.5 * pull + compute + launch_dc
        raise ValueError(f"cost model knows no strategy {strategy!r}")


@dataclass(frozen=True)
class ChunkPlan:
    """One chunk-tuning pass over an engine's upcoming iteration.

    ``block_chunks`` holds the per-block chunk counts chosen for the
    chunked-EC blocks (the ``JanusFeatures.block_chunks`` overrides);
    ``micro_batches`` is the single global M for the micro-capable blocks
    (micro lanes are per-rank structure shared by every micro-capable
    block, so M cannot vary per block); ``predicted_chunk_s`` maps block ->
    the cost model's uncontended per-chunk All-to-All seconds, compared
    against measured per-chunk times in ``repro report``.
    """

    block_chunks: Tuple[Tuple[int, int], ...] = ()
    micro_batches: Optional[int] = None
    predicted_chunk_s: Tuple[Tuple[int, float], ...] = ()

    @property
    def empty(self) -> bool:
        return not self.block_chunks and self.micro_batches is None


def tune_engine_chunks(engine, max_chunks: int = 64) -> ChunkPlan:
    """Pick chunk counts for every chunked-EC block of ``engine``'s next
    iteration from its (already drifted) routing.

    Routing is fixed per iteration and produced by the gate before any MoE
    communication starts, so the signals are available *before* the
    iteration runs — the same information window the paradigm selector
    uses.  Pipelined-ec blocks get individual ``tune_chunks`` optima;
    microbatch-ec blocks share one global M minimizing the summed estimate.
    """
    from .signals import BlockLoadSignals

    costs = CostModel.from_engine(engine)
    layout = engine.workload.layout
    overrides: List[Tuple[int, int]] = []
    predictions: List[Tuple[int, float]] = []
    micro_sigs: List[BlockLoadSignals] = []
    micro_blocks: List[int] = []
    for block in engine.workload.moe_blocks():
        name = engine.block_strategies.get(block.index)
        if name not in ("pipelined-ec", "microbatch-ec"):
            continue
        if block.num_experts % layout.world_size != 0:
            # No whole number of experts per worker (fewer experts than
            # workers, or an uneven split): the load signals have no
            # per-worker expert aggregate to tune from — leave the
            # block on its configured chunk count.
            continue
        sig = BlockLoadSignals.from_block(block, layout)
        if name == "pipelined-ec":
            chunks = costs.tune_chunks(sig, max_chunks=max_chunks)
            overrides.append((block.index, chunks))
            predictions.append(
                (block.index, costs.a2a_chunk_seconds(sig, chunks))
            )
        else:
            micro_sigs.append(sig)
            micro_blocks.append(block.index)

    micro: Optional[int] = None
    if micro_sigs:
        cap = 1
        limit = min(
            max_chunks,
            max(1, min(sig.max_rank_recv for sig in micro_sigs)),
        )
        while cap * 2 <= limit:
            cap *= 2
        candidates = []
        m = 1
        while m <= cap:
            candidates.append(m)
            m *= 2
        micro = min(
            candidates,
            key=lambda k: (
                sum(costs.chunk_time(sig, k) for sig in micro_sigs), k
            ),
        )
        predictions.extend(
            (index, costs.a2a_chunk_seconds(sig, micro))
            for index, sig in zip(micro_blocks, micro_sigs)
        )
    return ChunkPlan(
        block_chunks=tuple(overrides),
        micro_batches=micro,
        predicted_chunk_s=tuple(sorted(predictions)),
    )


@dataclass
class ControlDecision:
    """What one control step changes (empty dicts = leave everything)."""

    iteration: int
    # Block -> new strategy name; only *changes* appear here.
    strategies: Dict[int, str] = field(default_factory=dict)
    # Block -> why ("fault" | "load" | "recover").
    causes: Dict[int, str] = field(default_factory=dict)
    # Replica entries added/removed this step: (block, expert, machine).
    replicate: List[Tuple[int, int, int]] = field(default_factory=list)
    evict: List[Tuple[int, int, int]] = field(default_factory=list)
    # Full replica map after this step: block -> expert -> machines.
    replicas: Dict[int, Dict[int, Tuple[int, ...]]] = field(
        default_factory=dict
    )

    @property
    def empty(self) -> bool:
        return not (self.strategies or self.replicate or self.evict)


@dataclass
class _BlockState:
    """Mutable per-block controller state (the state machine node)."""

    mode: str = "normal"          # normal | degraded | probation
    cause: Optional[str] = None   # fault | load (while degraded)
    pending: int = 0              # consecutive drifted iterations seen
    streak: int = 0               # consecutive clean/calm iterations
    cooldown: int = 0             # iterations until next switch allowed
    probation: int = 0            # remaining probation iterations
    backoff: int = 1              # clean-streak multiplier (doubles on flap)


class ControlPolicy:
    """Per-block state machine unifying the fault and load arms.

    ``degradation`` (a :class:`~repro.faults.DegradationPolicy`) is the
    fault arm: its ``decide`` keeps picking the blocks to degrade, and its
    ``recover_after_clean`` knob (None = legacy one-way ratchet) arms
    probation-based recovery.  The load and replication arms follow
    ``config``.  ``preferred`` remembers each block's original (Eq. 1)
    strategy — the recovery target.
    """

    def __init__(self, config: Optional[ControlConfig] = None,
                 degradation=None):
        self.config = config if config is not None else ControlConfig()
        self.degradation = degradation
        self.preferred: Dict[int, str] = {}
        self.reference: Dict[int, float] = {}
        self.reference_share: Dict[int, np.ndarray] = {}
        self.replicas: Dict[int, Dict[int, Tuple[int, ...]]] = {}
        self._state: Dict[int, _BlockState] = {}

    def attach(self, strategies: Dict[int, str]) -> None:
        """Record the engine's starting strategy map as the preference."""
        for block, name in strategies.items():
            self.preferred.setdefault(block, name)

    def state_of(self, block: int) -> _BlockState:
        return self._state.setdefault(block, _BlockState())

    def deviation_of(self, block: int, sig: BlockLoadSignals) -> float:
        """Relative machine-imbalance growth over the block's reference."""
        ref = self.reference.setdefault(block, sig.machine_imbalance)
        return (sig.machine_imbalance - ref) / max(ref, 1.0)

    def share_drift_of(self, block: int, sig: BlockLoadSignals) -> float:
        """Total-variation distance of the expert-share vector from the
        block's reference share (0 = identical popularity, 1 = disjoint)."""
        ref = self.reference_share.setdefault(
            block, np.array(sig.expert_share, dtype=float)
        )
        if ref.shape != sig.expert_share.shape:
            return 0.0
        return float(0.5 * np.abs(sig.expert_share - ref).sum())

    # -- the decision step ---------------------------------------------------

    def decide(
        self,
        signals: ControlSignals,
        costs: Optional[CostModel] = None,
    ) -> ControlDecision:
        """One control step over one iteration's signals."""
        self.attach(signals.strategies)
        decision = ControlDecision(iteration=signals.iteration)
        fault_targets: Dict[int, str] = {}
        if self.degradation is not None and signals.fault_stats is not None:
            fault_targets = self.degradation.decide(signals.fault_stats)

        drifted: Dict[int, bool] = {}
        for block in sorted(signals.strategies):
            sig = signals.blocks.get(block)
            deviation = (
                self.deviation_of(block, sig) if sig is not None else 0.0
            )
            share_drift = (
                self.share_drift_of(block, sig) if sig is not None else 0.0
            )
            drifted[block] = (
                deviation > self.config.deviation
                or share_drift > self.config.share_deviation
            )
            self._decide_block(
                block, signals, decision, fault_targets, deviation, costs,
            )
        self._decide_replicas(signals, decision, drifted)
        return decision

    def _decide_block(
        self, block, signals, decision, fault_targets, deviation, costs
    ) -> None:
        cfg = self.config
        state = self.state_of(block)
        current = signals.strategies[block]
        if state.cooldown > 0:
            state.cooldown -= 1
        on_probation = state.mode == "probation"
        if on_probation:
            state.probation -= 1
            if state.probation <= 0:
                state.mode = "normal"
                state.backoff = 1

        # Fault arm dominates: a block the DegradationPolicy names must
        # degrade now, whatever the load arm thinks.
        if block in fault_targets:
            if on_probation:
                state.backoff = min(state.backoff * 2, cfg.max_backoff)
            state.mode, state.cause = "degraded", "fault"
            state.streak = state.pending = 0
            state.cooldown = cfg.cooldown
            target = fault_targets[block]
            if current != target:
                decision.strategies[block] = target
                decision.causes[block] = "fault"
            return

        if state.mode == "degraded" and state.cause == "fault":
            recover_after = getattr(
                self.degradation, "recover_after_clean", None
            )
            if recover_after is None:
                return          # legacy one-way ratchet preserved
            state.streak = state.streak + 1 if signals.fault_clean else 0
            if state.streak >= recover_after * state.backoff:
                self._recover(block, current, decision, state)
            return

        sig = signals.blocks.get(block)
        if not cfg.adapt_load or sig is None:
            return

        if state.mode == "degraded" and state.cause == "load":
            calm = deviation <= cfg.calm_deviation
            state.streak = state.streak + 1 if calm else 0
            if state.streak >= cfg.recover_after_clean * state.backoff:
                self._recover(block, current, decision, state)
            return

        # Normal / probation: watch for sustained drift worth switching on.
        drifted = deviation > cfg.deviation
        state.pending = state.pending + 1 if drifted else 0
        if (
            not drifted
            or state.pending < cfg.patience
            or state.cooldown > 0
            or costs is None
        ):
            return
        target = cfg.load_strategy
        if target == current:
            return
        current_cost = costs.estimate(sig, current)
        target_cost = costs.estimate(sig, target)
        if target_cost >= current_cost * (1.0 - cfg.hysteresis):
            return
        if on_probation:
            state.backoff = min(state.backoff * 2, cfg.max_backoff)
        state.mode, state.cause = "degraded", "load"
        state.streak = state.pending = 0
        state.cooldown = cfg.cooldown
        decision.strategies[block] = target
        decision.causes[block] = "load"

    def _recover(self, block, current, decision, state) -> None:
        cfg = self.config
        state.mode, state.cause = "probation", None
        state.probation = cfg.probation
        state.streak = 0
        state.cooldown = cfg.cooldown
        preferred = self.preferred.get(block, current)
        if current != preferred:
            decision.strategies[block] = preferred
            decision.causes[block] = "recover"

    # -- replication arm -----------------------------------------------------

    def _decide_replicas(self, signals, decision, drifted_blocks) -> None:
        cfg = self.config
        if not cfg.adapt_replicas:
            decision.replicas = self.replicas
            return
        effective = dict(signals.strategies)
        effective.update(decision.strategies)

        entries: List[Tuple[float, int, int, Tuple[int, ...]]] = []
        for block in sorted(signals.blocks):
            sig = signals.blocks[block]
            if effective.get(block) not in cfg.replicable:
                continue
            held = self.replicas.get(block, {})
            hot_cut = cfg.hot_factor / sig.num_experts
            keep_cut = cfg.evict_factor / sig.num_experts
            drifted = drifted_blocks.get(block, False)
            for expert in range(sig.num_experts):
                share = float(sig.expert_share[expert])
                holding = expert in held
                # Enter at the hot watermark (and only under drift — a
                # statically hot expert is a placement problem, not a
                # control-plane event); keep down to the evict watermark.
                if holding:
                    if share < keep_cut:
                        continue
                elif share < hot_cut or not drifted:
                    continue
                machines = tuple(
                    machine
                    for machine in sorted(sig.external_demand)
                    if expert in sig.external_demand[machine]
                )
                if machines:
                    entries.append((share, block, expert, machines))

        # Hottest experts claim the budget first; ties break low-index.
        entries.sort(key=lambda e: (-e[0], e[1], e[2]))
        new_map: Dict[int, Dict[int, Tuple[int, ...]]] = {}
        budget = cfg.max_replicas
        for share, block, expert, machines in entries:
            take = machines[:budget]
            if not take:
                break
            new_map.setdefault(block, {})[expert] = take
            budget -= len(take)

        old_entries = {
            (block, expert, machine)
            for block, experts in self.replicas.items()
            for expert, machines in experts.items()
            for machine in machines
        }
        new_entries = {
            (block, expert, machine)
            for block, experts in new_map.items()
            for expert, machines in experts.items()
            for machine in machines
        }
        decision.replicate = sorted(new_entries - old_entries)
        decision.evict = sorted(old_entries - new_entries)
        decision.replicas = new_map
        self.replicas = new_map
