"""Request-level inference serving on the simulated cluster.

* :mod:`~repro.serving.arrivals` — seeded open-loop request traces
  (Poisson / diurnal / bursty arrivals, lognormal prompts, geometric
  outputs, Zipf expert affinity), bit-reproducible from the spec alone.
* :mod:`~repro.serving.simulator` — continuous-batching serving over the
  :class:`~repro.netsim.Fabric`, in a unified or a disaggregated
  prefiller/decoder topology with KV-transfer flows and decode-side
  hot-expert pinning.
* :mod:`~repro.serving.report` — the serving report rendered by
  ``repro serve`` and embedded by the run report.

Entry points: ``repro serve`` (CLI), ``repro bench --suite serving``
(gated against ``benchmarks/BENCH_serving.json``).
"""

from .arrivals import (
    TRACE_KINDS,
    RequestTrace,
    TraceSpec,
    expert_rank,
    generate_trace,
)
from .report import SERVE_SCHEMA, build_serving_report, format_serving_summary
from .simulator import (
    TOPOLOGIES,
    ServingConfig,
    ServingResult,
    ServingSimulator,
    simulate_serving,
)

__all__ = [
    "SERVE_SCHEMA",
    "TOPOLOGIES",
    "TRACE_KINDS",
    "RequestTrace",
    "ServingConfig",
    "ServingResult",
    "ServingSimulator",
    "TraceSpec",
    "build_serving_report",
    "expert_rank",
    "format_serving_summary",
    "generate_trace",
    "simulate_serving",
]
