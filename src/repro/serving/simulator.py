"""Request-level serving on the simulated cluster.

Two topologies over the same :class:`~repro.netsim.Fabric`:

* **unified** — every machine is one serving worker that handles both
  phases of its requests.  Prefill is admitted ahead of decode between
  decode steps (continuous batching), so a burst of arrivals head-of-line
  blocks the decode batch — the latency artifact that motivates
  disaggregation.
* **disaggregated** — the first ``prefillers`` machines only prefill;
  the rest only decode.  Finished prefills ship their KV cache to the
  request's decoder as an explicit host-to-host flow, and the decode pool
  pins the hottest ``pin_fraction`` of experts locally so requests routed
  to them skip the wire entirely (the Janus-inference design: attention
  workers and expert workers scale and specialize independently).

Costs come from the same closed forms as the training engine
(:mod:`repro.models.flops`, :class:`~repro.cluster.GpuSpec`): a machine
retires ``tok_flops`` per token plus an attention term linear in the
tokens' attention-context length, with one fused-kernel overhead per block
per step — the overhead floor is what makes batched decode worthwhile.
Wire bytes per step follow the §5.1.3 byte volumes of whichever paradigm
serves the phase (``prefill_paradigm`` / ``decode_paradigm``, or ``auto``
to take the cheaper volume step by step, recorded per phase).

Everything is deterministic: no RNG is drawn during simulation, worker
loops iterate pools in fixed order, and results expose a :meth:`digest`
so reproducibility is checkable bit-for-bit.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from collections import deque
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..cluster import Cluster, Device
from ..config import ModelConfig
from ..core.strategies import comm_family, resolve_strategy_name
from ..models.flops import dense_ffn_flops, expert_flops_per_token
from ..netsim import Fabric
from ..simkit import AllOf, Environment
from .arrivals import RequestTrace, expert_rank

__all__ = [
    "TOPOLOGIES",
    "ServingConfig",
    "ServingResult",
    "ServingSimulator",
    "simulate_serving",
]

TOPOLOGIES = ("unified", "disaggregated")


@dataclass(frozen=True)
class ServingConfig:
    """Knobs of one serving deployment (see module docstring)."""

    topology: str = "unified"
    #: Disaggregated only: machines devoted to prefill (default: half,
    #: at least one on each side).
    prefillers: Optional[int] = None
    #: Decode admission cap per worker (continuous-batching batch size).
    max_batch: int = 64
    #: Requests fused into one prefill step.
    prefill_batch: int = 8
    #: Disaggregated only: fraction of each MoE block's experts pinned on
    #: every decode worker; requests ranked under the cut skip the wire.
    pin_fraction: float = 0.25
    #: Strategy-registry name or "auto" per phase.
    prefill_paradigm: str = "auto"
    decode_paradigm: str = "auto"
    #: Service-level objectives: time-to-first-token and per-output-token
    #: latency bounds a request must meet to count toward goodput.
    ttft_slo_s: float = 0.5
    tpot_slo_s: float = 0.005
    #: Per-kind cap on recorded trace spans (0 disables span recording);
    #: million-request runs must not grow a million-span trace.
    span_budget: int = 512

    def __post_init__(self):
        if self.topology not in TOPOLOGIES:
            raise ValueError(
                f"topology must be one of {TOPOLOGIES}, "
                f"got {self.topology!r}"
            )
        if self.prefillers is not None and self.prefillers <= 0:
            raise ValueError("prefillers must be positive")
        if self.max_batch <= 0 or self.prefill_batch <= 0:
            raise ValueError("max_batch and prefill_batch must be positive")
        if not 0.0 <= self.pin_fraction <= 1.0:
            raise ValueError("pin_fraction must be in [0, 1]")
        for phase_mode in (self.prefill_paradigm, self.decode_paradigm):
            if phase_mode != "auto":
                resolve_strategy_name(phase_mode)  # raises when unknown
        if self.ttft_slo_s <= 0 or self.tpot_slo_s <= 0:
            raise ValueError("SLO bounds must be positive")
        if self.span_budget < 0:
            raise ValueError("span_budget must be non-negative")


@dataclass
class ServingResult:
    """Per-request latencies plus run-level facts for one topology."""

    topology: str
    serving: ServingConfig
    trace: RequestTrace
    #: Simulated time each request produced its first token / finished.
    first_token_s: np.ndarray
    complete_s: np.ndarray
    makespan_s: float
    sim_events: int
    #: Per-phase counts of the paradigm chosen for each communicating step.
    paradigms: Dict[str, Dict[str, int]]
    #: machine -> NIC egress bytes.
    nic_egress_bytes: np.ndarray
    pools: Dict[str, Tuple[int, ...]]
    pin_count: int = 0
    pinned_tokens: int = 0
    missed_tokens: int = 0

    # -- derived per-request series -------------------------------------------

    @property
    def ttft_s(self) -> np.ndarray:
        return self.first_token_s - self.trace.arrival_s

    @property
    def e2e_s(self) -> np.ndarray:
        return self.complete_s - self.trace.arrival_s

    @property
    def decoded_mask(self) -> np.ndarray:
        """Requests with at least one decode step (output > 1)."""
        return self.trace.output_tokens > 1

    @property
    def tpot_s(self) -> np.ndarray:
        """Per-output-token decode latency of each decoded request."""
        mask = self.decoded_mask
        steps = self.trace.output_tokens[mask] - 1
        return (self.complete_s[mask] - self.first_token_s[mask]) / steps

    @property
    def slo_good(self) -> np.ndarray:
        """Requests meeting both SLO bounds (TPOT vacuous for output=1)."""
        good = self.ttft_s <= self.serving.ttft_slo_s
        mask = self.decoded_mask
        tpot_ok = np.ones(len(self.trace), dtype=bool)
        steps = np.maximum(self.trace.output_tokens - 1, 1)
        tpot_ok[mask] = (
            (self.complete_s[mask] - self.first_token_s[mask])
            / steps[mask]
        ) <= self.serving.tpot_slo_s
        return good & tpot_ok

    def summary(self) -> Dict:
        """Headline serving KPIs (pure simulated-time facts)."""
        ttft = self.ttft_s
        tpot = self.tpot_s
        percentile = np.percentile
        return {
            "topology": self.topology,
            "requests": len(self.trace),
            "makespan_s": float(self.makespan_s),
            "offered_rps": float(self.trace.offered_rate),
            "ttft_p50_ms": float(percentile(ttft, 50) * 1e3),
            "ttft_p99_ms": float(percentile(ttft, 99) * 1e3),
            "tpot_p50_ms": float(percentile(tpot, 50) * 1e3),
            "tpot_p99_ms": float(percentile(tpot, 99) * 1e3),
            "e2e_p99_ms": float(percentile(self.e2e_s, 99) * 1e3),
            "slo_attainment": float(self.slo_good.mean()),
            "goodput_rps": float(self.slo_good.sum() / self.makespan_s)
            if self.makespan_s > 0 else 0.0,
            "prefill_tokens": self.trace.total_prompt_tokens,
            "decode_tokens": int(
                (self.trace.output_tokens - 1).clip(min=0).sum()
            ),
            "pinned_tokens": self.pinned_tokens,
            "missed_tokens": self.missed_tokens,
            "nic_gb": float(self.nic_egress_bytes.sum() / 1e9),
            "paradigms": {
                phase: dict(sorted(counts.items()))
                for phase, counts in sorted(self.paradigms.items())
            },
            "sim_events": self.sim_events,
        }

    def digest(self) -> str:
        """Bit-identity of the run: trace bits plus every latency array."""
        digest = hashlib.sha256(self.trace.digest().encode())
        for array in (self.first_token_s, self.complete_s):
            digest.update(np.ascontiguousarray(array).tobytes())
        return digest.hexdigest()


class _Mailbox:
    """Single-consumer handoff queue between prefillers and one decoder."""

    __slots__ = ("env", "items", "_waiter")

    def __init__(self, env: Environment):
        self.env = env
        self.items: List[int] = []
        self._waiter = None

    def put(self, ids) -> None:
        self.items.extend(ids)
        waiter, self._waiter = self._waiter, None
        if waiter is not None:
            waiter.succeed()

    def drain(self) -> List[int]:
        items, self.items = self.items, []
        return items

    def wait(self):
        event = self.env.event()
        if self.items:
            event.succeed()
        else:
            self._waiter = event
        return event


@dataclass
class _PhaseState:
    """Mutable per-run bookkeeping shared by the worker generators."""

    remaining: np.ndarray
    context: np.ndarray
    first_token_s: np.ndarray
    complete_s: np.ndarray
    paradigms: Dict[str, Dict[str, int]] = field(
        default_factory=lambda: {"prefill": {}, "decode": {}}
    )
    pinned_tokens: int = 0
    missed_tokens: int = 0


class ServingSimulator:
    """One serving deployment of a model on a cluster (see module doc)."""

    def __init__(
        self,
        config: ModelConfig,
        cluster: Cluster,
        trace: RequestTrace,
        serving: ServingConfig = ServingConfig(),
        metrics=None,
        recorder=None,
    ):
        if not config.moe_block_indices:
            raise ValueError("serving needs a model with MoE blocks")
        self.config = config
        self.cluster = cluster
        self.trace = trace
        self.serving = serving
        self.metrics = metrics
        self.recorder = recorder

        machines = cluster.num_machines
        if serving.topology == "disaggregated":
            prefillers = (
                serving.prefillers
                if serving.prefillers is not None
                else max(1, machines // 2)
            )
            if prefillers >= machines:
                raise ValueError(
                    f"disaggregation needs at least one decoder: "
                    f"{prefillers} prefiller(s) on {machines} machine(s)"
                )
            self.prefill_pool = tuple(range(prefillers))
            self.decode_pool = tuple(range(prefillers, machines))
        else:
            self.prefill_pool = tuple(range(machines))
            self.decode_pool = tuple(range(machines))

        # -- cost model (per machine: all its GPUs act as one worker) ---------
        hidden = config.hidden_dim
        spec = cluster.spec
        self.machine_flops = spec.num_gpus * spec.gpu.effective_flops(hidden)
        self.step_overhead_s = spec.gpu.kernel_overhead * config.num_blocks
        moe = config.moe_block_indices
        self.num_experts = config.num_experts(moe[0])
        self.moe_blocks = config.num_moe_blocks
        dense_blocks = config.num_blocks - self.moe_blocks
        per_expert = expert_flops_per_token(hidden, config.ffn_mult)
        gate = 2.0 * hidden * sum(
            config.num_experts(index) for index in moe
        )
        # One token through the whole stack: QKV/output projections on
        # every block, dense FFN on non-MoE blocks, gate + top-k experts
        # on MoE blocks.  Attention's score/context term scales with the
        # token's context length and is accounted separately.
        self.tok_flops = (
            config.num_blocks * 8.0 * hidden * hidden
            + dense_blocks * dense_ffn_flops(1, 1, hidden, config.ffn_mult)
            + gate
            + self.moe_blocks * config.top_k * per_expert
        )
        self.ctx_flops = 4.0 * hidden * config.num_blocks
        self.kv_bytes_per_token = (
            2.0 * config.num_blocks * hidden * config.dtype_bytes
        )

        self.phase_mode = {
            "prefill": serving.prefill_paradigm,
            "decode": serving.decode_paradigm,
        }
        if serving.topology == "disaggregated":
            self.pin_count = int(round(serving.pin_fraction
                                       * self.num_experts))
        else:
            self.pin_count = 0

        self._peer_rr: Dict[Tuple[str, int], int] = {}
        self._kv_rr: Dict[int, int] = {}
        self._span_counts: Dict[str, int] = {}

    # -- metric / trace helpers ------------------------------------------------

    def _count(self, name: str, value: float = 1.0, **labels) -> None:
        if self.metrics is not None:
            self.metrics.inc(name, value, **labels)

    def _observe(self, name: str, value: float, **labels) -> None:
        if self.metrics is not None:
            self.metrics.observe(name, value, **labels)

    def _span(self, kind: str, start: float, end: float, machine: int,
              detail: str) -> None:
        if self.recorder is None:
            return
        seen = self._span_counts.get(kind, 0)
        if seen >= self.serving.span_budget:
            return
        self._span_counts[kind] = seen + 1
        self.recorder.record(kind, start, end, worker=machine, detail=detail)

    # -- the per-step traffic model --------------------------------------------

    def _phase_traffic(
        self, phase: str, pool: Tuple[int, ...],
        token_copies: float, expert_cap: float,
    ) -> Tuple[float, Optional[str]]:
        """Wire bytes one step moves off-worker, and the paradigm used.

        ``token_copies`` is routed (token, expert) pairs per MoE block;
        ``expert_cap`` bounds how many distinct experts the step can touch
        (a decode step cannot touch more experts than it routes tokens).
        """
        size = len(pool)
        if size <= 1 or token_copies <= 0:
            return 0.0, None
        off_worker = (size - 1) / size
        expert_centric = (
            2.0 * token_copies * self.moe_blocks
            * off_worker * self.config.token_bytes
        )
        data_centric = (
            min(self.num_experts, expert_cap) * self.moe_blocks
            * off_worker * self.config.expert_bytes
        )
        mode = self.phase_mode[phase]
        if mode == "auto":
            # Eq. 1 pointwise: take the smaller byte volume; ties go to
            # expert-centric, like select_paradigm's strict inequality.
            if data_centric < expert_centric:
                name, size_bytes = "data-centric", data_centric
            else:
                name, size_bytes = "expert-centric", expert_centric
        else:
            name = mode
            size_bytes = (
                data_centric
                if comm_family(mode) == "data-centric"
                else expert_centric
            )
        counts = self.state.paradigms[phase]
        counts[name] = counts.get(name, 0) + 1
        return size_bytes, name

    def _wire(self, phase: str, machine: int, pool: Tuple[int, ...],
              size_bytes: float, paradigm: str):
        """Start the step's aggregated off-worker flow; returns its event.

        Expert-centric ships tokens out to a peer; data-centric pulls
        expert parameters in from one.  Peers rotate round-robin so the
        byte bill spreads across the pool deterministically.
        """
        peers = [peer for peer in pool if peer != machine]
        slot = self._peer_rr.get((phase, machine), 0)
        self._peer_rr[(phase, machine)] = slot + 1
        peer = peers[slot % len(peers)]
        if comm_family(paradigm) == "data-centric":
            src, dst = peer, machine
        else:
            src, dst = machine, peer
        flow = self.fabric.transfer(
            Device.host(src), Device.host(dst), size_bytes,
            tag=("serve", phase, machine),
        )
        self._count("serve.bytes", size_bytes, kind=phase)
        return flow.done

    # -- phase steps -----------------------------------------------------------

    def _prefill_step(self, machine: int, ids: List[int]):
        env = self.env
        trace = self.trace
        state = self.state
        prompts = trace.prompt_tokens[ids]
        tokens = int(prompts.sum())
        attention_units = float(
            (prompts.astype(float) * (prompts + 1.0)).sum()
        ) / 2.0
        seconds = (
            tokens * self.tok_flops + attention_units * self.ctx_flops
        ) / self.machine_flops + self.step_overhead_s
        size_bytes, paradigm = self._phase_traffic(
            "prefill", self.prefill_pool,
            tokens * self.config.top_k, self.num_experts,
        )
        start = env.now
        waits = [env.timeout(seconds)]
        if size_bytes > 0:
            waits.append(self._wire(
                "prefill", machine, self.prefill_pool, size_bytes, paradigm
            ))
        yield waits[0] if len(waits) == 1 else AllOf(env, waits)
        now = env.now
        for request in ids:
            state.first_token_s[request] = now
            self._observe("serve.ttft_s", now - trace.arrival_s[request])
        self._count("serve.steps", phase="prefill")
        self._count("serve.tokens", tokens, phase="prefill")
        self._count("serve.requests", len(ids), kind="prefilled")
        self._span("serve.prefill", start, now, machine,
                   f"{len(ids)} req / {tokens} tok")

    def _decode_step(self, machine: int, pool: Tuple[int, ...],
                     active: List[int], context_sum: float, pinned: bool):
        env = self.env
        state = self.state
        batch = len(active)
        batch_ids = np.asarray(active, dtype=np.int64)
        seconds = (
            batch * self.tok_flops + context_sum * self.ctx_flops
        ) / self.machine_flops + self.step_overhead_s
        if pinned and self.pin_count > 0:
            hot = int(self.hot[batch_ids].sum())
        else:
            hot = 0
        missed = batch - hot
        state.pinned_tokens += hot
        state.missed_tokens += missed
        copies = missed * self.config.top_k
        size_bytes, paradigm = self._phase_traffic(
            "decode", pool, copies, copies,
        )
        start = env.now
        waits = [env.timeout(seconds)]
        if size_bytes > 0:
            waits.append(self._wire(
                "decode", machine, pool, size_bytes, paradigm
            ))
        yield waits[0] if len(waits) == 1 else AllOf(env, waits)
        now = env.now
        retired_context = 0
        state.remaining[batch_ids] -= 1
        state.context[batch_ids] += 1
        done_mask = state.remaining[batch_ids] == 0
        if done_mask.any():
            finished = batch_ids[done_mask]
            state.complete_s[finished] = now
            retired_context = int(state.context[finished].sum())
            for request in finished:
                self._finish(int(request), now)
            active[:] = batch_ids[~done_mask].tolist()
        self._count("serve.steps", phase="decode")
        self._count("serve.tokens", batch, phase="decode")
        self._observe("serve.batch", batch, phase="decode")
        self._span("serve.decode", start, now, machine,
                   f"batch {batch}" + (f" / {hot} pinned" if pinned else ""))
        return context_sum + batch - retired_context

    def _finish(self, request: int, now: float) -> None:
        trace = self.trace
        state = self.state
        self._count("serve.requests", kind="completed")
        self._observe("serve.e2e_s", now - trace.arrival_s[request])
        steps = int(trace.output_tokens[request]) - 1
        if steps > 0:
            self._observe(
                "serve.tpot_s",
                (now - state.first_token_s[request]) / steps,
            )

    # -- workers ---------------------------------------------------------------

    def _unified_worker(self, machine: int, assigned: List[int]):
        """One machine serving both phases with continuous batching."""
        env = self.env
        serving = self.serving
        arrivals = self.trace.arrival_s
        state = self.state
        queue = deque(assigned)
        active: List[int] = []
        context_sum = 0.0
        while queue or active:
            now = env.now
            admit: List[int] = []
            room = serving.max_batch - len(active)
            while (queue and len(admit) < serving.prefill_batch
                   and len(admit) < room and arrivals[queue[0]] <= now):
                admit.append(queue.popleft())
            if admit:
                # Prefill takes priority over the next decode step: this
                # is the head-of-line blocking a disaggregated decode
                # pool exists to avoid.
                yield from self._prefill_step(machine, admit)
                for request in admit:
                    if state.remaining[request] == 0:
                        state.complete_s[request] = state.first_token_s[
                            request
                        ]
                        self._finish(request, env.now)
                    else:
                        active.append(request)
                        context_sum += float(state.context[request])
                continue
            if active:
                context_sum = yield from self._decode_step(
                    machine, self.decode_pool, active, context_sum,
                    pinned=False,
                )
                continue
            yield env.timeout(arrivals[queue[0]] - now)

    def _prefill_worker(self, machine: int, assigned: List[int]):
        """Disaggregated prefiller: batch prefills, stream KV to decoders.

        KV transfers start *with* the prefill step, not after it —
        layer-wise streaming ships each layer's cache as soon as that
        layer's prefill retires, so the wire time overlaps prefill
        compute instead of landing in the request's first inter-token
        gap.  Per-request flows rotate across the machine's NICs.
        """
        env = self.env
        serving = self.serving
        arrivals = self.trace.arrival_s
        state = self.state
        queue = deque(assigned)
        while queue:
            now = env.now
            if arrivals[queue[0]] > now:
                yield env.timeout(arrivals[queue[0]] - now)
                continue
            admit: List[int] = []
            while (queue and len(admit) < serving.prefill_batch
                   and arrivals[queue[0]] <= now):
                admit.append(queue.popleft())
            handoff: Dict[int, List[int]] = {}
            for request in admit:
                if state.remaining[request] > 0:
                    handoff.setdefault(
                        int(self.decoder_of[request]), []
                    ).append(request)
            flows = {
                decoder: self._kv_flows(machine, decoder, ids)
                for decoder, ids in sorted(handoff.items())
            }
            yield from self._prefill_step(machine, admit)
            for request in admit:
                if state.remaining[request] == 0:
                    state.complete_s[request] = state.first_token_s[request]
                    self._finish(request, env.now)
            for decoder, ids in sorted(handoff.items()):
                env.process(
                    self._kv_handoff(machine, decoder, ids, flows[decoder]),
                    name=f"serve.kv.{machine}->{decoder}",
                )

    def _kv_flows(self, src: int, dst: int, ids: List[int]) -> List:
        """Start the group's KV-cache flows, striped across the NICs.

        Requests are dealt round-robin onto NIC lanes and each lane
        carries one aggregated flow — the sweet spot between a single
        serialized transfer (one NIC's bandwidth) and per-request flows
        (a fluid-solver rate recompute per request).
        """
        num_nics = self.cluster.spec.num_nics
        lanes: Dict[int, float] = {}
        for request in ids:
            slot = self._kv_rr.get(src, 0)
            self._kv_rr[src] = slot + 1
            lane = slot % num_nics
            size_bytes = float(
                self.kv_bytes_per_token * self.trace.prompt_tokens[request]
            )
            lanes[lane] = lanes.get(lane, 0.0) + size_bytes
            self._count("serve.bytes", size_bytes, kind="kv")
        return [
            self.fabric.transfer(
                Device.host(src), Device.host(dst), size_bytes,
                nic_index=lane, tag=("serve", "kv", src),
            )
            for lane, size_bytes in sorted(lanes.items())
        ]

    def _kv_handoff(self, src: int, dst: int, ids: List[int], flows: List):
        """Wait out the residual KV wire time, then enqueue at the decoder."""
        start = self.env.now
        for flow in flows:
            if not flow.done.triggered:
                yield flow.done
        self._span("serve.kv", start, self.env.now, src,
                   f"{len(ids)} req -> m{dst}")
        self.mailboxes[dst].put(ids)

    def _decode_worker(self, machine: int, expected: int):
        """Disaggregated decoder: admit from the mailbox between steps."""
        serving = self.serving
        state = self.state
        mailbox = self.mailboxes[machine]
        pending: deque = deque()
        active: List[int] = []
        context_sum = 0.0
        finished = 0
        while finished < expected or active or pending:
            pending.extend(mailbox.drain())
            while pending and len(active) < serving.max_batch:
                request = pending.popleft()
                active.append(request)
                context_sum += float(state.context[request])
            if active:
                before = len(active)
                context_sum = yield from self._decode_step(
                    machine, self.decode_pool, active, context_sum,
                    pinned=True,
                )
                finished += before - len(active)
            else:
                yield mailbox.wait()

    # -- driver ----------------------------------------------------------------

    def run(self) -> ServingResult:
        trace = self.trace
        count = len(trace)
        self.env = Environment()
        self.fabric = Fabric(self.env, self.cluster)
        self.state = _PhaseState(
            remaining=(trace.output_tokens - 1).astype(np.int64),
            context=trace.prompt_tokens.astype(np.int64).copy(),
            first_token_s=np.full(count, -1.0),
            complete_s=np.full(count, -1.0),
        )
        ranks = expert_rank(
            trace.affinity, self.num_experts, trace.spec.skew
        )
        self.hot = ranks < self.pin_count
        self._count("serve.requests", count, kind="offered")

        ids = np.arange(count)
        if self.serving.topology == "disaggregated":
            decoders = np.asarray(self.decode_pool)
            self.decoder_of = decoders[ids % len(decoders)]
            self.mailboxes = {
                machine: _Mailbox(self.env) for machine in self.decode_pool
            }
            for slot, machine in enumerate(self.prefill_pool):
                assigned = ids[ids % len(self.prefill_pool) == slot]
                self.env.process(
                    self._prefill_worker(machine, list(assigned)),
                    name=f"serve.prefiller.{machine}",
                )
            decode_needed = self.state.remaining > 0
            for machine in self.decode_pool:
                expected = int(
                    (decode_needed & (self.decoder_of == machine)).sum()
                )
                self.env.process(
                    self._decode_worker(machine, expected),
                    name=f"serve.decoder.{machine}",
                )
        else:
            for slot, machine in enumerate(self.prefill_pool):
                assigned = ids[ids % len(self.prefill_pool) == slot]
                self.env.process(
                    self._unified_worker(machine, list(assigned)),
                    name=f"serve.worker.{machine}",
                )
        self.env.run()

        state = self.state
        nic = np.array([
            self.fabric.nic_bytes(machine, "out")
            for machine in range(self.cluster.num_machines)
        ])
        return ServingResult(
            topology=self.serving.topology,
            serving=self.serving,
            trace=trace,
            first_token_s=state.first_token_s,
            complete_s=state.complete_s,
            makespan_s=float(self.env.now),
            sim_events=self.env.events_processed,
            paradigms=state.paradigms,
            nic_egress_bytes=nic,
            pools={
                "prefill": self.prefill_pool,
                "decode": self.decode_pool,
            },
            pin_count=self.pin_count,
            pinned_tokens=state.pinned_tokens,
            missed_tokens=state.missed_tokens,
        )


def simulate_serving(
    config: ModelConfig,
    cluster: Cluster,
    trace: RequestTrace,
    serving: ServingConfig = ServingConfig(),
    metrics=None,
    recorder=None,
) -> ServingResult:
    """Run one topology end to end (convenience wrapper)."""
    return ServingSimulator(
        config, cluster, trace, serving,
        metrics=metrics, recorder=recorder,
    ).run()
