"""Seeded open-loop request traces for the serving simulator.

A :class:`TraceSpec` describes one arrival process plus the per-request
length/affinity distributions; :func:`generate_trace` evaluates it into a
:class:`RequestTrace` of flat numpy arrays.  Generation is a pure function
of the spec — same spec, same bits, on any host and in any process — which
is what makes serving goldens and the bench reproducibility gate possible.

Arrival kinds (all share the same long-run mean ``rate``):

* ``poisson`` — homogeneous Poisson arrivals at ``rate`` requests/second.
* ``diurnal`` — sinusoidally modulated rate,
  ``rate * (1 + amplitude * sin(2*pi*t / period))``: the daily traffic
  swell compressed to simulation scale.
* ``bursty``  — a deterministic duty cycle: each ``period`` opens with a
  burst window (fraction ``duty`` of the period) at ``burst`` times the
  calm rate; calm rate is chosen so the long-run mean stays ``rate``.

All kinds are sampled by thinning against the peak rate in fixed-size
vectorized chunks, so million-request traces cost a handful of numpy
calls rather than a Python loop per request.

Request shape: prompt lengths are rounded lognormals around
``prompt_mean`` (heavy right tail, like real prompt mixes), output
lengths are geometric with mean ``output_mean`` (memoryless decode), and
``affinity`` is a uniform draw in [0, 1) that the serving layer maps
through a Zipf CDF (``expert_rank``) to a preferred expert — ``skew``
controls how concentrated that popularity is (0 = uniform).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, replace

import numpy as np

__all__ = [
    "TRACE_KINDS",
    "TraceSpec",
    "RequestTrace",
    "generate_trace",
    "expert_rank",
]

TRACE_KINDS = ("poisson", "diurnal", "bursty")

# Candidate arrivals drawn per thinning round.  Fixed — chunking is part
# of the deterministic sampling procedure, so it must not depend on the
# host or the request count.
_CHUNK = 16384

# Lognormal shape parameter for prompt lengths (sigma of log-length).
_PROMPT_SIGMA = 0.5

# Length clip, in multiples of the configured mean: keeps the tails heavy
# but the worst-case request bounded.
_LENGTH_CAP = 16


@dataclass(frozen=True)
class TraceSpec:
    """One seeded request-arrival process (see module docstring)."""

    kind: str = "poisson"
    rate: float = 1000.0
    requests: int = 10_000
    seed: int = 0
    prompt_mean: float = 128.0
    output_mean: float = 32.0
    skew: float = 0.0
    period: float = 4.0
    amplitude: float = 0.8
    burst: float = 4.0
    duty: float = 0.2

    def __post_init__(self):
        if self.kind not in TRACE_KINDS:
            raise ValueError(
                f"kind must be one of {TRACE_KINDS}, got {self.kind!r}"
            )
        if self.rate <= 0:
            raise ValueError("rate must be positive")
        if self.requests <= 0:
            raise ValueError("requests must be positive")
        if self.prompt_mean < 1 or self.output_mean < 1:
            raise ValueError("prompt_mean and output_mean must be >= 1")
        if self.skew < 0:
            raise ValueError("skew must be non-negative")
        if self.period <= 0:
            raise ValueError("period must be positive")
        if not 0.0 <= self.amplitude <= 1.0:
            raise ValueError("amplitude must be in [0, 1]")
        if self.burst < 1:
            raise ValueError("burst must be >= 1")
        if not 0.0 < self.duty < 1.0:
            raise ValueError("duty must be in (0, 1)")

    @classmethod
    def parse(cls, text: str) -> "TraceSpec":
        """Parse the CLI grammar, e.g.
        ``poisson;rate=2000;requests=100000;seed=7;skew=1.2``.

        The first clause may be a bare kind name; remaining clauses are
        ``field=value`` with the fields of this dataclass.
        """
        spec = cls()
        fields = {
            "kind": str, "rate": float, "requests": int, "seed": int,
            "prompt_mean": float, "output_mean": float, "skew": float,
            "period": float, "amplitude": float, "burst": float,
            "duty": float,
        }
        for position, clause in enumerate(text.split(";")):
            clause = clause.strip()
            if not clause:
                continue
            if "=" not in clause:
                if position == 0 and clause in TRACE_KINDS:
                    spec = replace(spec, kind=clause)
                    continue
                raise ValueError(f"malformed trace clause {clause!r}")
            key, _, value = clause.partition("=")
            key = key.strip().replace("-", "_")
            if key not in fields:
                raise ValueError(f"unknown trace field {key!r}")
            try:
                spec = replace(spec, **{key: fields[key](value.strip())})
            except ValueError as exc:
                raise ValueError(
                    f"bad value for trace field {key!r}: {value!r}"
                ) from exc
        return spec

    # -- the rate function -----------------------------------------------------

    @property
    def peak_rate(self) -> float:
        """Upper bound of the instantaneous rate (thinning envelope)."""
        if self.kind == "diurnal":
            return self.rate * (1.0 + self.amplitude)
        if self.kind == "bursty":
            return self.burst * self._calm_rate
        return self.rate

    @property
    def _calm_rate(self) -> float:
        # Chosen so duty-weighted mean over one period equals ``rate``.
        return self.rate / ((1.0 - self.duty) + self.burst * self.duty)

    def rate_at(self, times: np.ndarray) -> np.ndarray:
        """Instantaneous arrival rate lambda(t), vectorized."""
        times = np.asarray(times, dtype=float)
        if self.kind == "diurnal":
            swing = np.sin(2.0 * np.pi * times / self.period)
            return self.rate * (1.0 + self.amplitude * swing)
        if self.kind == "bursty":
            phase = np.mod(times, self.period)
            return np.where(
                phase < self.duty * self.period,
                self.burst * self._calm_rate,
                self._calm_rate,
            )
        return np.full_like(times, self.rate)

    def generate(self) -> "RequestTrace":
        return generate_trace(self)


@dataclass
class RequestTrace:
    """A materialized trace: parallel arrays, one entry per request."""

    spec: TraceSpec
    arrival_s: np.ndarray
    prompt_tokens: np.ndarray
    output_tokens: np.ndarray
    affinity: np.ndarray

    def __len__(self) -> int:
        return int(self.arrival_s.shape[0])

    @property
    def total_prompt_tokens(self) -> int:
        return int(self.prompt_tokens.sum())

    @property
    def total_output_tokens(self) -> int:
        return int(self.output_tokens.sum())

    @property
    def offered_rate(self) -> float:
        """Realized request rate over the trace's span."""
        last = float(self.arrival_s[-1])
        return len(self) / last if last > 0 else float("inf")

    def digest(self) -> str:
        """SHA-256 over the spec and every array — the bit-identity of the
        trace, compared across processes and bench runs."""
        digest = hashlib.sha256(repr(self.spec).encode())
        for array in (self.arrival_s, self.prompt_tokens,
                      self.output_tokens, self.affinity):
            digest.update(np.ascontiguousarray(array).tobytes())
        return digest.hexdigest()


def generate_trace(spec: TraceSpec) -> RequestTrace:
    """Evaluate ``spec`` into arrays (deterministic in the spec alone)."""
    rng = np.random.default_rng(spec.seed)
    count = spec.requests
    peak = spec.peak_rate
    pieces = []
    accepted = 0
    clock = 0.0
    while accepted < count:
        gaps = rng.exponential(1.0 / peak, _CHUNK)
        times = clock + np.cumsum(gaps)
        # Thin against the envelope: keep a candidate at time t with
        # probability lambda(t) / peak.  For the homogeneous kind the
        # ratio is 1 and every candidate survives.
        keep = rng.random(_CHUNK) * peak < spec.rate_at(times)
        kept = times[keep]
        pieces.append(kept)
        accepted += kept.shape[0]
        clock = float(times[-1])
    arrival = np.concatenate(pieces)[:count]

    sigma = _PROMPT_SIGMA
    mu = np.log(spec.prompt_mean) - 0.5 * sigma * sigma
    prompt = np.rint(rng.lognormal(mu, sigma, count)).astype(np.int64)
    prompt = np.clip(prompt, 1, max(1, int(_LENGTH_CAP * spec.prompt_mean)))

    output = rng.geometric(1.0 / spec.output_mean, count).astype(np.int64)
    output = np.clip(output, 1, max(1, int(_LENGTH_CAP * spec.output_mean)))

    affinity = rng.random(count)
    return RequestTrace(spec, arrival, prompt, output, affinity)


def expert_rank(
    affinity: np.ndarray, num_experts: int, skew: float
) -> np.ndarray:
    """Map uniform affinities to expert popularity ranks (0 = hottest).

    Popularity follows a Zipf law over ranks (``weight_r ~ 1/(r+1)^skew``);
    ``skew=0`` degenerates to a uniform assignment.  Requests keep their
    affinity for life, so a request's expert never changes between prefill
    and decode — which is what makes decode-side hot-expert pinning
    meaningful.
    """
    if num_experts <= 0:
        raise ValueError("num_experts must be positive")
    if skew < 0:
        raise ValueError("skew must be non-negative")
    affinity = np.asarray(affinity, dtype=float)
    if skew == 0:
        return np.minimum(
            (affinity * num_experts).astype(np.int64), num_experts - 1
        )
    weights = 1.0 / np.arange(1, num_experts + 1, dtype=float) ** skew
    cdf = np.cumsum(weights / weights.sum())
    cdf[-1] = 1.0  # guard the float tail so affinity < 1 always maps
    return np.searchsorted(cdf, affinity, side="right").astype(np.int64)
