"""Serving reports: the ``repro serve`` table and its JSON document."""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from .simulator import ServingResult

__all__ = ["SERVE_SCHEMA", "build_serving_report", "format_serving_summary"]

SERVE_SCHEMA = "janus-repro/serve-report/v1"


def build_serving_report(
    results: Sequence[ServingResult],
    registry=None,
    **meta,
) -> Dict:
    """Machine-readable document for one ``repro serve`` invocation.

    ``meta`` (model, machines, trace spec, ...) is recorded verbatim under
    ``"run"``; each topology contributes its summary and digest.
    """
    report = {
        "schema": SERVE_SCHEMA,
        "run": dict(sorted(meta.items())),
        "topologies": {
            result.topology: dict(
                result.summary(), digest=result.digest()
            )
            for result in results
        },
    }
    if registry is not None:
        report["metrics"] = registry.as_dict()
    return report


def format_serving_summary(
    results: Sequence[ServingResult], title: Optional[str] = None
) -> str:
    """Fixed-width comparison table across topologies."""
    header = (
        f"{'topology':<15} {'p50 TTFT':>9} {'p99 TTFT':>9} "
        f"{'p50 TPOT':>9} {'p99 TPOT':>9} {'goodput':>9} "
        f"{'SLO':>6} {'GB':>7} {'sim s':>7}"
    )
    lines = []
    if title:
        lines.append(title)
    lines += [header, "-" * len(header)]
    for result in results:
        summary = result.summary()
        lines.append(
            f"{summary['topology']:<15} "
            f"{summary['ttft_p50_ms']:>7.2f}ms "
            f"{summary['ttft_p99_ms']:>7.2f}ms "
            f"{summary['tpot_p50_ms']:>7.3f}ms "
            f"{summary['tpot_p99_ms']:>7.3f}ms "
            f"{summary['goodput_rps']:>7.0f}/s "
            f"{summary['slo_attainment']:>6.1%} "
            f"{summary['nic_gb']:>7.2f} "
            f"{summary['makespan_s']:>7.2f}"
        )
    for result in results:
        summary = result.summary()
        choices = "; ".join(
            f"{phase}: " + ", ".join(
                f"{name} x{count}" for name, count in counts.items()
            )
            for phase, counts in summary["paradigms"].items()
            if counts
        )
        if choices:
            lines.append(f"{result.topology}: {choices}")
    return "\n".join(lines)
